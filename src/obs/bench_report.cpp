#include "obs/bench_report.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>

#include "common/parallel.h"
#include "obs/live/live.h"
#include "obs/prof/prof.h"
#include "obs/prof_report.h"
#include "obs/runlog.h"
#include "obs/timeseries/timeseries.h"

namespace hpcos::obs {

namespace {

// Ledger timestamp, injected at this edge only: HPCOS_RUN_TIMESTAMP
// overrides (CI can stamp a commit date; tests can pin a constant), else
// the current UTC wall clock. Record construction itself never reads a
// clock (obs/runlog determinism contract).
std::string ledger_timestamp() {
  if (const char* injected = std::getenv("HPCOS_RUN_TIMESTAMP");
      injected != nullptr && injected[0] != '\0') {
    return injected;
  }
  const std::time_t now = std::chrono::system_clock::to_time_t(
      std::chrono::system_clock::now());
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buf;
}

}  // namespace

BenchReport::BenchReport(std::string bench_name, bool quick,
                         std::uint64_t seed)
    : bench_name_(std::move(bench_name)), quick_(quick), seed_(seed) {}

void BenchReport::add_metric(const std::string& name, const std::string& unit,
                             double value) {
  add_metric(BenchMetric{.name = name, .unit = unit, .value = value});
}

void BenchReport::add_metric(BenchMetric metric) {
  metrics_.push_back(std::move(metric));
}

void BenchReport::add_series(const std::string& name, const std::string& unit,
                             const ts::TimeSeries& series) {
  JsonValue s = JsonValue::object();
  s.set("name", name);
  s.set("unit", unit);
  s.set("resolution_us",
        static_cast<double>(series.resolution().count_ns()) / 1e3);
  s.set("coarsens", series.coarsen_count());
  JsonValue buckets = JsonValue::array();
  for (std::size_t i = 0; i < series.bucket_count(); ++i) {
    const ts::SeriesBucket& b = series.bucket(i);
    if (b.empty()) continue;
    JsonValue bucket = JsonValue::object();
    bucket.set("t_us",
               static_cast<double>(series.bucket_start(i).count_ns()) / 1e3);
    bucket.set("min", b.min);
    bucket.set("max", b.max);
    bucket.set("sum", b.sum);
    bucket.set("count", b.count);
    buckets.push_back(std::move(bucket));
  }
  s.set("buckets", std::move(buckets));
  series_.push_back(std::move(s));
}

JsonValue BenchReport::to_json() const {
  JsonValue doc = JsonValue::object();
  doc.set("schema", kBenchReportSchema);
  doc.set("bench", bench_name_);
  doc.set("quick", quick_);
  doc.set("seed", static_cast<double>(seed_));
  JsonValue platform = JsonValue::object();
  platform.set("host_parallelism",
               static_cast<std::uint64_t>(default_parallelism()));
  doc.set("platform", std::move(platform));
  JsonValue metrics = JsonValue::array();
  for (const auto& m : metrics_) {
    JsonValue metric = JsonValue::object();
    metric.set("name", m.name);
    metric.set("unit", m.unit);
    metric.set("value", m.value);
    if (!m.percentiles.empty()) {
      JsonValue pct = JsonValue::object();
      for (const auto& [k, v] : m.percentiles) pct.set(k, v);
      metric.set("percentiles", std::move(pct));
    }
    metrics.push_back(std::move(metric));
  }
  doc.set("metrics", std::move(metrics));
  if (!series_.empty()) {
    JsonValue series = JsonValue::array();
    for (const auto& s : series_) series.push_back(s);
    doc.set("series", std::move(series));
  }
  return doc;
}

void BenchReport::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open bench report path: " + path);
  }
  out << to_json().dump_pretty();
  if (!out) {
    throw std::runtime_error("write failed for bench report: " + path);
  }
}

std::string validate_bench_report(const JsonValue& doc) {
  if (!doc.is_object()) return "document is not a JSON object";
  for (const char* key : {"schema", "bench", "quick", "seed", "metrics"}) {
    if (!doc.contains(key)) return std::string("missing key \"") + key + "\"";
  }
  if (!doc.at("schema").is_string() ||
      doc.at("schema").as_string() != kBenchReportSchema) {
    return "schema is not \"" + std::string(kBenchReportSchema) + "\"";
  }
  if (!doc.at("bench").is_string() || doc.at("bench").as_string().empty()) {
    return "bench name missing or empty";
  }
  if (!doc.at("quick").is_bool()) return "quick is not a bool";
  if (!doc.at("metrics").is_array()) return "metrics is not an array";
  const auto& metrics = doc.at("metrics").as_array();
  if (metrics.empty()) return "metrics array is empty";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const auto& m = metrics[i];
    const std::string where = "metrics[" + std::to_string(i) + "]";
    if (!m.is_object()) return where + " is not an object";
    for (const char* key : {"name", "unit", "value"}) {
      if (!m.contains(key)) return where + " missing \"" + key + "\"";
    }
    if (!m.at("name").is_string() || m.at("name").as_string().empty()) {
      return where + " name missing or empty";
    }
    if (!m.at("unit").is_string()) return where + " unit is not a string";
    if (!m.at("value").is_number()) {
      // The writer refuses NaN/Inf (json_format_number throws), so a
      // non-number here means a hand-edited or foreign document.
      return where + " value is missing or not a number";
    }
    if (!std::isfinite(m.at("value").as_number())) {
      return where + " value is not finite";
    }
    if (const JsonValue* pct = m.find("percentiles"); pct != nullptr) {
      if (!pct->is_object()) return where + " percentiles is not an object";
      for (const auto& [k, v] : pct->members()) {
        if (!v.is_number() || !std::isfinite(v.as_number())) {
          return where + " percentile \"" + k + "\" is NaN or missing";
        }
      }
    }
  }
  if (const JsonValue* series = doc.find("series"); series != nullptr) {
    if (!series->is_array()) return "series is not an array";
    const auto& entries = series->as_array();
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const auto& s = entries[i];
      const std::string where = "series[" + std::to_string(i) + "]";
      if (!s.is_object()) return where + " is not an object";
      if (!s.contains("name") || !s.at("name").is_string() ||
          s.at("name").as_string().empty()) {
        return where + " name missing or empty";
      }
      if (!s.contains("resolution_us") ||
          !s.at("resolution_us").is_number() ||
          !std::isfinite(s.at("resolution_us").as_number())) {
        return where + " resolution_us missing or not finite";
      }
      if (!s.contains("buckets") || !s.at("buckets").is_array()) {
        return where + " buckets missing or not an array";
      }
      const auto& buckets = s.at("buckets").as_array();
      for (std::size_t j = 0; j < buckets.size(); ++j) {
        const auto& b = buckets[j];
        const std::string bwhere =
            where + ".buckets[" + std::to_string(j) + "]";
        if (!b.is_object()) return bwhere + " is not an object";
        for (const char* key : {"t_us", "min", "max", "sum", "count"}) {
          if (!b.contains(key) || !b.at(key).is_number() ||
              !std::isfinite(b.at(key).as_number())) {
            return bwhere + " \"" + key + "\" missing or not finite";
          }
        }
      }
    }
  }
  return {};
}

namespace {

// Default watchdog threshold when --watchdog is given bare.
constexpr double kDefaultWatchdogS = 30.0;

std::string argv0_basename(int argc, char** argv) {
  if (argc <= 0 || argv[0] == nullptr || argv[0][0] == '\0') return "bench";
  std::string name = argv[0];
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  return name.empty() ? "bench" : name;
}

}  // namespace

BenchOptions parse_bench_options(int argc, char** argv) {
  BenchOptions opts;
  if (argc > 0) opts.remaining.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--quick") == 0) {
      opts.quick = true;
    } else if (std::strcmp(arg, "--profile") == 0) {
      opts.sinks.profile = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "--json requires a path argument\n";
        std::exit(2);
      }
      opts.sinks.json_path = argv[++i];
    } else if (std::strcmp(arg, "--ledger") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "--ledger requires a path argument\n";
        std::exit(2);
      }
      opts.sinks.ledger_path = argv[++i];
    } else if (std::strcmp(arg, "--progress") == 0) {
      opts.sinks.progress = true;
    } else if (std::strncmp(arg, "--progress=", 11) == 0) {
      opts.sinks.progress = true;
      opts.sinks.progress_interval_ms = std::atoi(arg + 11);
      if (opts.sinks.progress_interval_ms <= 0) {
        std::cerr << "--progress=<interval_ms> requires a positive integer\n";
        std::exit(2);
      }
    } else if (std::strcmp(arg, "--progress-file") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "--progress-file requires a path argument\n";
        std::exit(2);
      }
      opts.sinks.heartbeat_path = argv[++i];
      opts.sinks.progress = true;
    } else if (std::strcmp(arg, "--watchdog") == 0) {
      opts.sinks.watchdog_stall_s = kDefaultWatchdogS;
    } else if (std::strncmp(arg, "--watchdog=", 11) == 0) {
      opts.sinks.watchdog_stall_s = std::atof(arg + 11);
      if (!(opts.sinks.watchdog_stall_s > 0.0)) {
        std::cerr << "--watchdog=<seconds> requires a positive number\n";
        std::exit(2);
      }
    } else if (std::strcmp(arg, "--watchdog-abort") == 0) {
      opts.sinks.watchdog_abort = true;
    } else {
      opts.remaining.push_back(argv[i]);
    }
  }
  if (opts.sinks.watchdog_abort && opts.sinks.watchdog_stall_s <= 0.0) {
    opts.sinks.watchdog_stall_s = kDefaultWatchdogS;
  }
  // Arm the sinks here so every bench target honors the flags without
  // per-target plumbing; the scopes/counters are already in the code.
  if (opts.sinks.profile) prof::set_enabled(true);
  if (opts.sinks.progress || opts.sinks.watchdog_stall_s > 0.0) {
    live::ProgressConfig cfg;
    cfg.target = argv0_basename(argc, argv);
    cfg.interval_ms = opts.sinks.progress_interval_ms;
    if (opts.sinks.progress) {
      if (opts.sinks.heartbeat_path.empty()) {
        opts.sinks.heartbeat_path = cfg.target + ".heartbeat.jsonl";
      }
      cfg.jsonl_path = opts.sinks.heartbeat_path;
    }
    cfg.stderr_line = opts.sinks.progress;
    cfg.stall_after_s = opts.sinks.watchdog_stall_s;
    cfg.abort_on_stall = opts.sinks.watchdog_abort;
    live::start_global_meter(std::move(cfg));
  }
  return opts;
}

void maybe_write_report(BenchReport& report, const BenchOptions& opts) {
  // Stop the live meter first: its final heartbeat closes the stream and
  // the whole-run aggregates become host.* metrics (routed into the
  // record's host half by make_run_record; the gate/trend tolerances
  // ignore host.progress.* / host.watchdog.*, so wall-clock throughput
  // is tracked but never gated).
  const live::MeterSummary progress = live::stop_global_meter();
  if (progress.active) {
    const live::HeartbeatAggregates& a = progress.agg;
    report.add_metric("host.progress.heartbeats.count", "count",
                      static_cast<double>(a.records));
    report.add_metric("host.progress.events.total", "count",
                      static_cast<double>(a.events_total));
    report.add_metric("host.progress.events_per_sec.mean", "rate",
                      a.events_per_sec_mean);
    report.add_metric("host.progress.events_per_sec.max", "rate",
                      a.events_per_sec_max);
    report.add_metric("host.progress.units.done", "count",
                      static_cast<double>(a.units_done));
    report.add_metric("host.progress.units.total", "count",
                      static_cast<double>(a.units_total));
    report.add_metric("host.watchdog.stalls.count", "count",
                      static_cast<double>(a.stalls));
    std::cout << "[progress] " << a.records << " heartbeats, "
              << a.events_total << " events in " << a.elapsed_s
              << " s (mean " << a.events_per_sec_mean << " ev/s, max "
              << a.events_per_sec_max << " ev/s), stalls " << a.stalls;
    if (!opts.sinks.heartbeat_path.empty()) {
      std::cout << " -> " << opts.sinks.heartbeat_path;
    }
    std::cout << "\n";
  }
  if (opts.sinks.profile) {
    const prof::Profile profile = prof::collect();
    add_profile_metrics(report, profile);
    add_memory_metrics(report);
    std::cout << "\n=== host-side hotspots (--profile) ===\n";
    print_profile(std::cout, profile);
  }
  if (!opts.sinks.json_path.empty()) {
    report.write(opts.sinks.json_path);
    std::cout << "[bench-report] wrote " << report.metric_count()
              << " metrics to " << opts.sinks.json_path << "\n";
  }
  if (!opts.sinks.ledger_path.empty()) {
    // Config fallback when the target attached none: the bench identity.
    // Targets with a real simulation config call report.set_config() and
    // get exact-memoization hashes instead.
    JsonValue config = report.config();
    if (config.is_null()) {
      config = JsonValue::object();
      config.set("schema", "hpcos-config-bench-identity/1");
      config.set("bench", report.bench_name());
      config.set("quick", report.quick());
      config.set("seed", report.seed());
    }
    const prof::Profile profile = opts.sinks.profile ? prof::collect()
                                                     : prof::Profile{};
    const JsonValue record = make_run_record(
        report, config, ledger_timestamp(),
        opts.sinks.profile ? &profile : nullptr);
    append_run_record(opts.sinks.ledger_path, record);
    std::cout << "[run-ledger] appended " << report.bench_name()
              << " (config " << record.at("config_hash").as_string()
              << ") to " << opts.sinks.ledger_path << "\n";
  }
}

}  // namespace hpcos::obs
