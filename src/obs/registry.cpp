#include "obs/registry.h"

#include <algorithm>

namespace hpcos::obs {

Counter* Registry::counter(const std::string& name) {
  for (auto& c : counters_) {
    if (c.name == name) return c.value.get();
  }
  counters_.push_back({name, std::make_unique<Counter>()});
  return counters_.back().value.get();
}

LogHistogram* Registry::histogram(const std::string& name, double min_value,
                                  double max_value, std::size_t num_bins) {
  for (auto& h : histograms_) {
    if (h.name == name) return h.value.get();
  }
  histograms_.push_back(
      {name, std::make_unique<LogHistogram>(min_value, max_value, num_bins)});
  return histograms_.back().value.get();
}

const Counter* Registry::find_counter(const std::string& name) const {
  for (const auto& c : counters_) {
    if (c.name == name) return c.value.get();
  }
  return nullptr;
}

const LogHistogram* Registry::find_histogram(const std::string& name) const {
  for (const auto& h : histograms_) {
    if (h.name == name) return h.value.get();
  }
  return nullptr;
}

Snapshot Registry::snapshot() const {
  Snapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& c : counters_) {
    s.counters.push_back({c.name, c.value->value()});
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& h : histograms_) {
    Snapshot::HistogramEntry e;
    e.name = h.name;
    e.count = h.value->total_count();
    if (e.count > 0) {
      e.p50 = h.value->quantile(0.5);
      e.p99 = h.value->quantile(0.99);
      e.max = h.value->observed_max();
    }
    s.histograms.push_back(std::move(e));
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(s.counters.begin(), s.counters.end(), by_name);
  std::sort(s.histograms.begin(), s.histograms.end(), by_name);
  return s;
}

Snapshot Snapshot::delta(const Snapshot& after, const Snapshot& before) {
  Snapshot out;
  for (const auto& c : after.counters) {
    std::uint64_t base = 0;
    for (const auto& b : before.counters) {
      if (b.name == c.name) {
        base = b.value;
        break;
      }
    }
    out.counters.push_back({c.name, c.value - base});
  }
  for (const auto& h : after.histograms) {
    std::uint64_t base = 0;
    for (const auto& b : before.histograms) {
      if (b.name == h.name) {
        base = b.count;
        break;
      }
    }
    HistogramEntry e = h;
    e.count = h.count - base;
    out.histograms.push_back(std::move(e));
  }
  return out;
}

}  // namespace hpcos::obs
