// Reporting glue between the host-side profiler (obs/prof) and the
// repo's observability surfaces: BenchReport JSON, Registry counters
// (and through them the OpenMetrics exporter), and the human-readable
// hotspot table.
//
// Naming discipline (enforced by the bench_gate tolerance file): scope
// *fire counts* are a pure function of the simulated work, so they are
// emitted as plain gated metrics (`prof.<scope>.count`); everything
// measured in host nanoseconds is machine-dependent and goes under the
// ignore-listed `host.*` prefix (`host.prof.*`, `host.mem.*`).
#pragma once

#include <iosfwd>
#include <string>

#include "obs/bench_report.h"
#include "obs/prof/prof.h"
#include "obs/registry.h"

namespace hpcos::obs {

// Fold a collected profile into a BenchReport:
//   prof.<scope>.count            count  (deterministic, gated)
//   host.prof.<scope>.self_us     us     (ignored by the gate)
//   host.prof.<scope>.total_us    us
//   host.prof.events / .threads / .dropped / .root_total_us
void add_profile_metrics(BenchReport& report, const prof::Profile& profile);

// Fold scope fire counts (prof.<scope>.count) plus the merge summary
// (prof.events, prof.dropped) into a Registry, giving the profiler's
// deterministic face the same OpenMetrics round trip every other counter
// has.
void fold_profile_registry(Registry& registry, const prof::Profile& profile);

// Per-subsystem allocation counters (host.mem.<name>.bytes/.events) and
// the process RSS sample (host.mem.rss_bytes, host.mem.peak_rss_bytes,
// host.mem.vm_bytes) — all host-dependent, all ignore-listed.
void add_memory_metrics(BenchReport& report);

// Ranked hotspot table (top `top` scopes by self time) plus the merge
// summary line, in the repo's fixed-width table layout.
void print_profile(std::ostream& out, const prof::Profile& profile,
                   std::size_t top = 20);

}  // namespace hpcos::obs
