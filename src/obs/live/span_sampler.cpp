#include "obs/live/span_sampler.h"

#include <utility>

#include "sim/span_tree.h"

namespace hpcos::obs::live {

namespace {

// Collect the whole tree under `root` (the forest's child order is
// deterministic: (time, span id)), appending records to `out`.
void collect_tree(const sim::SpanForest& forest, std::size_t root,
                  std::vector<sim::TraceRecord>* out) {
  out->push_back(forest.records()[root]);
  for (std::size_t child : forest.children(root)) {
    collect_tree(forest, child, out);
  }
}

}  // namespace

NodeSample sample_node(const SpanSamplerConfig& cfg, std::uint64_t node_index,
                       const std::vector<sim::TraceRecord>& records) {
  NodeSample sample;
  const sim::SpanForest forest(records);
  // The node's private stream: (seed, node) and nothing else, so the
  // decision sequence is independent of which host thread runs this call
  // and of every other node.
  RngStream rng(Seed{cfg.seed}, node_index);

  std::vector<std::size_t> kept_roots;
  for (std::size_t root : forest.roots()) {
    ++sample.roots_seen;
    const sim::TraceRecord& rec = forest.records()[root];
    // Exact side first: every root contributes its duration, kept or not.
    auto [it, inserted] = sample.sketches.try_emplace(
        rec.label, QuantileSketch(cfg.sketch_relative_error));
    it->second.add(rec.duration.to_us());

    // Sampled side: rate gate, then Algorithm-R reservoir over the kept
    // sequence. Both consume the same per-node stream, so the whole
    // decision trail is a function of (seed, node, record sequence).
    if (cfg.rate < 1.0 && !rng.bernoulli(cfg.rate)) continue;
    if (cfg.max_roots_per_node == 0 ||
        kept_roots.size() < cfg.max_roots_per_node) {
      kept_roots.push_back(root);
    } else {
      const std::uint64_t slot = rng.uniform_index(sample.roots_kept + 1);
      if (slot < cfg.max_roots_per_node) {
        kept_roots[static_cast<std::size_t>(slot)] = root;
      }
    }
    ++sample.roots_kept;
  }
  // roots_kept counted rate-survivors; the reservoir may have evicted
  // some, so the retained count is the reservoir size.
  sample.roots_kept = kept_roots.size();
  for (std::size_t root : kept_roots) {
    collect_tree(forest, root, &sample.records);
  }
  sample.records_kept = sample.records.size();
  return sample;
}

std::size_t SampledTrace::sketch_bucket_count() const {
  std::size_t total = 0;
  for (const auto& [label, sketch] : sketches) total += sketch.bucket_count();
  return total;
}

SampledTrace aggregate_samples(const std::vector<NodeSample>& samples) {
  SampledTrace out;
  for (const NodeSample& sample : samples) {
    ++out.nodes;
    out.roots_seen += sample.roots_seen;
    out.roots_kept += sample.roots_kept;
    out.records_kept += sample.records_kept;
    out.records.insert(out.records.end(), sample.records.begin(),
                       sample.records.end());
    for (const auto& [label, sketch] : sample.sketches) {
      auto [it, inserted] = out.sketches.try_emplace(label, sketch);
      if (!inserted) it->second.merge(sketch);
    }
  }
  return out;
}

}  // namespace hpcos::obs::live
