// The hpcos-heartbeat/1 record: one line of a live progress stream.
//
// A ProgressMeter (obs/live/live.h) samples the live counter hub on a
// wall-clock timer and appends one self-contained JSON line per tick to a
// *.heartbeat.jsonl stream (plus an ASCII line on stderr). The schema is
// deliberately flat and small — a tail -f consumer, the `live` CLI, or a
// future campaign daemon can parse any line in isolation:
//
//   {
//     "schema": "hpcos-heartbeat/1",
//     "target": "bench_fig4_fwq_cdf",
//     "kind": "tick" | "stall" | "final",
//     "seq": 3,                      // tick index, 0-based
//     "t_ms": 3001.2,                // wall time since meter start
//     "events": 123456789,           // cumulative live events
//     "events_per_sec": 41152.0,     // delta rate over the last interval
//     "sim_time_us": 3.6e9,          // furthest simulated-time position
//     "units_done": 42, "units_total": 160,
//     "eta_s": 34.2,                 // 0 when units_total is unknown
//     "des": { "depth": 12, "max_depth": 96 },
//     "sched": { "chunks": 880, "steals": 41, "parks": 7, "max_depth": 3 },
//     "rss_bytes": 221249536, "peak_rss_bytes": 234881024,
//     "stalls": 0                    // watchdog episodes so far
//   }
//
// Heartbeats are HOST telemetry by definition (wall-clock rates, RSS):
// they never enter the deterministic half of any record, and a heartbeat
// line in a *run-ledger* file is a hard, specifically-worded error in the
// strict ledger parser (obs/runlog) — the two streams must not mix.
//
// Like the ledger, the stream is append-only at line granularity, the
// strict parser hard-fails with line numbers, and the lenient parser
// skips-and-counts (a heartbeat file torn by the very hang the watchdog
// diagnosed must still be analyzable).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"

namespace hpcos::obs::live {

inline constexpr const char* kHeartbeatSchema = "hpcos-heartbeat/1";

// One sampled heartbeat, host-side units throughout.
struct Heartbeat {
  std::string target;
  std::string kind = "tick";  // "tick" | "stall" | "final"
  std::uint64_t seq = 0;
  double t_ms = 0.0;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  double sim_time_us = 0.0;
  std::uint64_t units_done = 0;
  std::uint64_t units_total = 0;
  double eta_s = 0.0;
  std::size_t des_depth = 0;
  std::size_t des_max_depth = 0;
  std::uint64_t sched_chunks = 0;
  std::uint64_t sched_steals = 0;
  std::uint64_t sched_parks = 0;
  std::uint64_t sched_max_depth = 0;
  std::uint64_t rss_bytes = 0;
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t stalls = 0;
};

JsonValue heartbeat_to_json(const Heartbeat& hb);

// Schema validation. Returns "" when valid, else a one-line description
// of the first violation.
std::string validate_heartbeat_record(const JsonValue& record);

// The record as one stream line (no trailing newline). Throws when the
// record fails validation.
std::string heartbeat_line(const JsonValue& record);

// One human-readable stderr line (the "watch it run" rendering):
//   [hb bench_fig4] 12.0s ev=41.3M (3.44M/s) sim=12.50s units 42/160
//   eta 33s rss 211MiB
std::string heartbeat_ascii(const Heartbeat& hb);

struct HeartbeatLog {
  std::vector<JsonValue> records;  // file order
  std::size_t skipped = 0;         // lenient mode: damaged lines skipped
};

// Parse heartbeat stream text. Strict mode throws on the first malformed
// line or unknown schema ("heartbeat line N: ..."); lenient mode skips
// and counts.
HeartbeatLog parse_heartbeat_log(const std::string& text, bool strict = true);

// Read + parse a heartbeat file. Missing file: error in strict mode,
// empty log in lenient mode.
HeartbeatLog read_heartbeat_log(const std::string& path, bool strict = true);

// Whole-stream aggregates — what maybe_write_report folds into the run
// ledger (host.progress.*) and what the `live` CLI reports.
struct HeartbeatAggregates {
  std::uint64_t records = 0;     // all kinds
  std::uint64_t ticks = 0;       // kind == "tick"
  std::uint64_t stalls = 0;      // max "stalls" field seen
  std::uint64_t events_total = 0;
  double elapsed_s = 0.0;        // last t_ms
  double events_per_sec_mean = 0.0;  // events_total / elapsed
  double events_per_sec_max = 0.0;   // max per-tick rate
  std::uint64_t units_done = 0;
  std::uint64_t units_total = 0;
  std::uint64_t peak_rss_bytes = 0;
};
HeartbeatAggregates aggregate_heartbeats(const std::vector<JsonValue>& records);

}  // namespace hpcos::obs::live
