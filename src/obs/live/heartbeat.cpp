#include "obs/live/heartbeat.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hpcos::obs::live {

namespace {

bool is_uint_field(const JsonValue& v) {
  if (!v.is_number()) return false;
  const double d = v.as_number();
  return d >= 0.0 && std::floor(d) == d;
}

std::string fmt1(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

std::string fmt2(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

// 41345678 -> "41.3M": compact magnitudes for the one-line rendering.
std::string human_count(double v) {
  const char* suffix = "";
  if (v >= 1e9) {
    v /= 1e9;
    suffix = "G";
  } else if (v >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (v >= 1e3) {
    v /= 1e3;
    suffix = "k";
  }
  return (*suffix ? fmt2(v) : fmt1(v)) + std::string(suffix);
}

std::string human_bytes(std::uint64_t bytes) {
  const double mib = static_cast<double>(bytes) / (1024.0 * 1024.0);
  if (mib >= 1024.0) return fmt2(mib / 1024.0) + "GiB";
  return fmt1(mib) + "MiB";
}

}  // namespace

JsonValue heartbeat_to_json(const Heartbeat& hb) {
  JsonValue rec = JsonValue::object();
  rec.set("schema", kHeartbeatSchema);
  rec.set("target", hb.target);
  rec.set("kind", hb.kind);
  rec.set("seq", hb.seq);
  rec.set("t_ms", hb.t_ms);
  rec.set("events", hb.events);
  rec.set("events_per_sec", hb.events_per_sec);
  rec.set("sim_time_us", hb.sim_time_us);
  rec.set("units_done", hb.units_done);
  rec.set("units_total", hb.units_total);
  rec.set("eta_s", hb.eta_s);
  JsonValue des = JsonValue::object();
  des.set("depth", static_cast<std::uint64_t>(hb.des_depth));
  des.set("max_depth", static_cast<std::uint64_t>(hb.des_max_depth));
  rec.set("des", std::move(des));
  JsonValue sched = JsonValue::object();
  sched.set("chunks", hb.sched_chunks);
  sched.set("steals", hb.sched_steals);
  sched.set("parks", hb.sched_parks);
  sched.set("max_depth", hb.sched_max_depth);
  rec.set("sched", std::move(sched));
  rec.set("rss_bytes", hb.rss_bytes);
  rec.set("peak_rss_bytes", hb.peak_rss_bytes);
  rec.set("stalls", hb.stalls);
  return rec;
}

std::string validate_heartbeat_record(const JsonValue& record) {
  if (!record.is_object()) return "heartbeat record must be a JSON object";
  const JsonValue* schema = record.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    return "missing string field \"schema\"";
  }
  if (schema->as_string() != kHeartbeatSchema) {
    return "unknown schema \"" + schema->as_string() + "\" (expected " +
           std::string(kHeartbeatSchema) + ")";
  }
  const JsonValue* target = record.find("target");
  if (target == nullptr || !target->is_string() ||
      target->as_string().empty()) {
    return "missing non-empty string field \"target\"";
  }
  const JsonValue* kind = record.find("kind");
  if (kind == nullptr || !kind->is_string()) {
    return "missing string field \"kind\"";
  }
  const std::string& k = kind->as_string();
  if (k != "tick" && k != "stall" && k != "final") {
    return "field \"kind\" must be \"tick\", \"stall\", or \"final\" (got \"" +
           k + "\")";
  }
  for (const char* name : {"seq", "events", "units_done", "units_total",
                           "rss_bytes", "peak_rss_bytes", "stalls"}) {
    const JsonValue* v = record.find(name);
    if (v == nullptr || !is_uint_field(*v)) {
      return "missing non-negative integer field \"" + std::string(name) +
             "\"";
    }
  }
  for (const char* name : {"t_ms", "events_per_sec", "sim_time_us", "eta_s"}) {
    const JsonValue* v = record.find(name);
    if (v == nullptr || !v->is_number() || v->as_number() < 0.0) {
      return "missing non-negative number field \"" + std::string(name) + "\"";
    }
  }
  for (const char* section : {"des", "sched"}) {
    const JsonValue* sec = record.find(section);
    if (sec == nullptr || !sec->is_object()) {
      return "missing object field \"" + std::string(section) + "\"";
    }
    for (const auto& [key, value] : sec->members()) {
      if (!is_uint_field(value)) {
        return "field \"" + std::string(section) + "." + key +
               "\" must be a non-negative integer";
      }
    }
    if (sec->find("depth") == nullptr && sec->find("max_depth") == nullptr &&
        sec->find("chunks") == nullptr) {
      return "object field \"" + std::string(section) + "\" is empty";
    }
  }
  return "";
}

std::string heartbeat_line(const JsonValue& record) {
  const std::string err = validate_heartbeat_record(record);
  if (!err.empty()) {
    throw std::runtime_error("invalid heartbeat record: " + err);
  }
  return record.dump();
}

std::string heartbeat_ascii(const Heartbeat& hb) {
  std::ostringstream out;
  out << "[hb " << hb.target << "] ";
  if (hb.kind != "tick") out << hb.kind << " ";
  out << fmt1(hb.t_ms / 1000.0) << "s ev="
      << human_count(static_cast<double>(hb.events)) << " ("
      << human_count(hb.events_per_sec) << "/s) sim="
      << fmt2(hb.sim_time_us / 1e6) << "s";
  if (hb.units_total > 0) {
    out << " units " << hb.units_done << "/" << hb.units_total;
    if (hb.eta_s > 0.0) out << " eta " << fmt1(hb.eta_s) << "s";
  }
  out << " rss " << human_bytes(hb.rss_bytes);
  if (hb.stalls > 0) out << " stalls=" << hb.stalls;
  return out.str();
}

HeartbeatLog parse_heartbeat_log(const std::string& text, bool strict) {
  HeartbeatLog log;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    ++line_no;
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    // Blank lines are tolerated in both modes: a torn final write leaves
    // one, and it carries no information either way.
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string err;
    try {
      JsonValue rec = JsonValue::parse(line);
      err = validate_heartbeat_record(rec);
      if (err.empty()) {
        log.records.push_back(std::move(rec));
        continue;
      }
    } catch (const JsonParseError& e) {
      err = e.what();
    }
    if (strict) {
      throw std::runtime_error("heartbeat line " + std::to_string(line_no) +
                               ": " + err);
    }
    ++log.skipped;
  }
  return log;
}

HeartbeatLog read_heartbeat_log(const std::string& path, bool strict) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (strict) {
      throw std::runtime_error("cannot open heartbeat log: " + path);
    }
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_heartbeat_log(buf.str(), strict);
}

HeartbeatAggregates aggregate_heartbeats(
    const std::vector<JsonValue>& records) {
  HeartbeatAggregates agg;
  for (const JsonValue& rec : records) {
    ++agg.records;
    const std::string& kind = rec.at("kind").as_string();
    if (kind == "tick") ++agg.ticks;
    agg.stalls = std::max(
        agg.stalls, static_cast<std::uint64_t>(rec.at("stalls").as_number()));
    // Cumulative fields: the stream's last word wins.
    agg.events_total = static_cast<std::uint64_t>(rec.at("events").as_number());
    agg.elapsed_s = std::max(agg.elapsed_s, rec.at("t_ms").as_number() / 1e3);
    agg.events_per_sec_max =
        std::max(agg.events_per_sec_max, rec.at("events_per_sec").as_number());
    agg.units_done =
        static_cast<std::uint64_t>(rec.at("units_done").as_number());
    agg.units_total =
        static_cast<std::uint64_t>(rec.at("units_total").as_number());
    agg.peak_rss_bytes = std::max(
        agg.peak_rss_bytes,
        static_cast<std::uint64_t>(rec.at("peak_rss_bytes").as_number()));
  }
  if (agg.elapsed_s > 0.0) {
    agg.events_per_sec_mean =
        static_cast<double>(agg.events_total) / agg.elapsed_s;
  }
  return agg;
}

}  // namespace hpcos::obs::live
