#include "obs/live/counters.h"

#include <atomic>

namespace hpcos::obs::live {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_events{0};
std::atomic<std::uint64_t> g_units_total{0};
std::atomic<std::uint64_t> g_units_done{0};
std::atomic<std::int64_t> g_sim_time_ns{0};
std::atomic<std::size_t> g_des_depth{0};
std::atomic<std::size_t> g_des_max_depth{0};

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

void reset_counters() {
  g_events.store(0, std::memory_order_relaxed);
  g_units_total.store(0, std::memory_order_relaxed);
  g_units_done.store(0, std::memory_order_relaxed);
  g_sim_time_ns.store(0, std::memory_order_relaxed);
  g_des_depth.store(0, std::memory_order_relaxed);
  g_des_max_depth.store(0, std::memory_order_relaxed);
}

void add_events(std::uint64_t n) {
  g_events.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t events() { return g_events.load(std::memory_order_relaxed); }

void add_units_total(std::uint64_t n) {
  g_units_total.fetch_add(n, std::memory_order_relaxed);
}

void add_units_done(std::uint64_t n) {
  g_units_done.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t units_total() {
  return g_units_total.load(std::memory_order_relaxed);
}

std::uint64_t units_done() {
  return g_units_done.load(std::memory_order_relaxed);
}

void note_sim_time_ns(std::int64_t t_ns) {
  // Monotonic max: several simulators may report, and the heartbeat wants
  // the furthest virtual-time position any of them reached.
  std::int64_t prev = g_sim_time_ns.load(std::memory_order_relaxed);
  while (prev < t_ns && !g_sim_time_ns.compare_exchange_weak(
                            prev, t_ns, std::memory_order_relaxed)) {
  }
}

std::int64_t sim_time_ns() {
  return g_sim_time_ns.load(std::memory_order_relaxed);
}

void note_des_depth(std::size_t depth) {
  g_des_depth.store(depth, std::memory_order_relaxed);
  std::size_t prev = g_des_max_depth.load(std::memory_order_relaxed);
  while (prev < depth && !g_des_max_depth.compare_exchange_weak(
                             prev, depth, std::memory_order_relaxed)) {
  }
}

std::size_t des_depth() {
  return g_des_depth.load(std::memory_order_relaxed);
}

std::size_t des_max_depth() {
  return g_des_max_depth.load(std::memory_order_relaxed);
}

}  // namespace hpcos::obs::live
