// Deterministic sampled span tracing for full-scale runs.
//
// Full-duration span tracing scales its memory with nodes × duration:
// at the paper's 158,976-node full-machine scale even a modest per-node
// ring is hundreds of GiB of TraceRecords. The sampler decouples the two
// costs:
//
//   * Distributions stay EXACT and bounded: every root span's duration
//     feeds a per-label QuantileSketch (log-bucketed, mergeable), so
//     p50/p99/p999 latency per span label cover the full population at
//     O(buckets) memory no matter how long the run is.
//   * Raw trees are SAMPLED: each root is kept with probability `rate`
//     by a per-(seed, node) RngStream, optionally thinned further by an
//     Algorithm-R reservoir of at most `max_roots_per_node` roots; a
//     kept root brings its whole tree (children and all), so sampled
//     records remain valid SpanForest input for attribution and Chrome
//     export.
//
// Determinism: sample_node() is a pure function of (config, node_index,
// records) — the RNG is derived from (seed, node) alone, never from a
// global counter or host state — and sketch merge is exactly
// associative. Sampling node outputs in parallel and aggregating them in
// node-index order therefore yields bit-identical results for any host
// thread count, the same contract as every campaign merge (DESIGN §6).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sketch.h"
#include "sim/trace.h"

namespace hpcos::obs::live {

struct SpanSamplerConfig {
  std::uint64_t seed = 0;
  // Probability a root span's tree is retained. 1.0 keeps everything
  // (sampled output == full trace — the exactness test pins this).
  double rate = 1.0;
  // Reservoir cap on retained roots per node after rate sampling;
  // 0 = unlimited. This is the hard memory bound for long runs.
  std::size_t max_roots_per_node = 0;
  // Relative error of the per-label duration sketches.
  double sketch_relative_error = 0.01;
};

// One node's sampled trace. `sketches` cover every root seen (exact
// counts); `records` hold only the kept trees, whole and in root order.
struct NodeSample {
  std::uint64_t roots_seen = 0;
  std::uint64_t roots_kept = 0;
  std::uint64_t records_kept = 0;
  std::vector<sim::TraceRecord> records;
  // Root-span label -> sketch of root durations in microseconds.
  std::map<std::string, QuantileSketch> sketches;
};

// Sample one node's record snapshot. Pure: no global state, no host
// randomness; safe to call concurrently for distinct nodes.
NodeSample sample_node(const SpanSamplerConfig& cfg, std::uint64_t node_index,
                       const std::vector<sim::TraceRecord>& records);

// Whole-run aggregate. Callers MUST pass samples in node-index order —
// the order is the determinism contract, exactly like shard merges.
struct SampledTrace {
  std::uint64_t nodes = 0;
  std::uint64_t roots_seen = 0;
  std::uint64_t roots_kept = 0;
  std::uint64_t records_kept = 0;
  std::vector<sim::TraceRecord> records;
  std::map<std::string, QuantileSketch> sketches;

  // Total sketch buckets across labels — the distribution side's entire
  // memory footprint, what the bounded-memory test pins.
  std::size_t sketch_bucket_count() const;
};
SampledTrace aggregate_samples(const std::vector<NodeSample>& samples);

}  // namespace hpcos::obs::live
