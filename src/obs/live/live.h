// ProgressMeter: heartbeats and a stall watchdog for in-flight runs.
//
// Every other observability layer reports after the run exits; the meter
// is the one that talks while it runs. A dedicated sampling thread wakes
// on a wall-clock timer, reads the live counter hub (obs/live/counters.h)
// plus the scheduler/profiler/procfs gauges, and
//
//   * emits one hpcos-heartbeat/1 JSON line per interval to an optional
//     *.heartbeat.jsonl stream and/or an ASCII line to stderr, and
//   * when armed, watches for stalls: if the progress signature (events,
//     completed units, simulated time) stops changing for stall_after_s
//     wall seconds, it emits a "stall" heartbeat, dumps a diagnostic
//     snapshot — DES queue depth/max, per-slot deque depths + park
//     counts, top profile scopes, RSS/VmHWM — and can abort the process
//     with a nonzero exit so a CI hang becomes a diagnosable failure
//     instead of a timeout.
//
// Invariants (DESIGN §9):
//   * The meter is an observer, never a participant: it only reads
//     relaxed atomics and procfs. Enabling it must not change any
//     deterministic output — reports with and without --progress are
//     bit-identical.
//   * Everything it emits is host telemetry. Its aggregates enter the
//     run ledger only under host.progress.* / host.watchdog.*, which the
//     trend/gate tolerance rules ignore.
//   * Stall abort uses std::_Exit: the watchdog fires on a wedged
//     process, and running destructors from the meter thread while the
//     wedged threads hold locks would trade a diagnosable hang for an
//     undiagnosable crash.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "obs/live/heartbeat.h"

namespace hpcos::obs::live {

// Exit code when the watchdog aborts a stalled process (EX_SOFTWARE
// family; distinct from test-failure exits so CI can tell them apart).
inline constexpr int kStallExitCode = 70;

struct ProgressConfig {
  std::string target = "unknown";
  int interval_ms = 1000;    // heartbeat cadence (clamped to >= 10)
  std::string jsonl_path;    // empty: no file stream
  bool stderr_line = true;   // ASCII heartbeat on stderr
  double stall_after_s = 0.0;  // 0: watchdog disarmed
  bool abort_on_stall = false;
  // Where stall snapshots go. Default (unset): stderr. Tests inject a
  // capture function to assert on snapshot content.
  std::function<void(const std::string&)> stall_sink;
};

// What stop() hands back to maybe_write_report for ledger folding.
struct MeterSummary {
  bool active = false;  // false: no meter ran (flags absent)
  HeartbeatAggregates agg;
};

// The diagnostic snapshot the watchdog dumps, exposed so tests (and the
// hotspot CLI) can render one without waiting for a real stall.
std::string build_stall_snapshot(const Heartbeat& hb, double stalled_for_s);

class ProgressMeter {
 public:
  explicit ProgressMeter(ProgressConfig cfg);
  ~ProgressMeter();  // stops the thread if still running (discards summary)

  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  // Zero the counter hub, arm it, open the stream, launch the sampler.
  void start();
  // Join the sampler, emit the "final" heartbeat, disarm the hub, return
  // whole-run aggregates. Idempotent; returns {active=false} if start()
  // never ran.
  MeterSummary stop();
  bool running() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Process-global meter used by the shared bench plumbing:
// parse_bench_options starts it when --progress/--watchdog are present;
// maybe_write_report stops it and folds the summary into the report.
void start_global_meter(ProgressConfig cfg);
MeterSummary stop_global_meter();
bool global_meter_active();

}  // namespace hpcos::obs::live
