#include "obs/live/live.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "obs/live/counters.h"
#include "obs/prof/mem.h"
#include "obs/prof/prof.h"

namespace hpcos::obs::live {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

std::string fmt1(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

std::string mib(std::uint64_t bytes) {
  return fmt1(static_cast<double>(bytes) / (1024.0 * 1024.0)) + " MiB";
}

}  // namespace

std::string build_stall_snapshot(const Heartbeat& hb, double stalled_for_s) {
  std::ostringstream out;
  out << "=== hpcos stall watchdog: no progress for " << fmt1(stalled_for_s)
      << "s ===\n";
  out << heartbeat_ascii(hb) << "\n";
  out << "des: queue depth " << hb.des_depth << " (max " << hb.des_max_depth
      << "), sim time " << fmt1(hb.sim_time_us / 1e6) << " s, events "
      << hb.events << "\n";
  // Live per-slot scheduler state: where is the backlog, who is asleep?
  const std::vector<std::size_t> depths = parallel_deque_depths();
  const std::vector<WorkerHealth> health = parallel_worker_health();
  const std::size_t slots = std::max(depths.size(), health.size());
  out << "sched: " << slots << " slots (slot 0 = caller)\n";
  for (std::size_t i = 0; i < slots; ++i) {
    out << "  slot " << i << ": deque depth "
        << (i < depths.size() ? depths[i] : 0);
    if (i < health.size()) {
      out << ", chunks " << health[i].chunks << ", steals "
          << health[i].steals << ", parks " << health[i].parks;
    }
    out << "\n";
  }
  if (prof::enabled()) {
    const prof::Profile profile = prof::collect();
    out << "top profile scopes (self time):\n";
    const std::size_t top = std::min<std::size_t>(5, profile.scopes.size());
    for (std::size_t i = 0; i < top; ++i) {
      const prof::ScopeStat& s = profile.scopes[i];
      out << "  " << s.name << ": count " << s.count << ", self "
          << fmt1(static_cast<double>(s.self_ns) / 1e6) << " ms\n";
    }
  }
  const prof::HostMemory mem = prof::sample_host_memory();
  if (mem.valid) {
    out << "mem: rss " << mib(mem.rss_bytes) << ", peak (VmHWM) "
        << mib(mem.peak_rss_bytes) << "\n";
  }
  out << "=== end stall snapshot ===\n";
  return out.str();
}

struct ProgressMeter::Impl {
  ProgressConfig cfg;
  std::ofstream out;
  std::mutex mu;
  std::condition_variable_any cv;
  std::jthread thread;
  bool started = false;
  bool stopped = false;
  MeterSummary summary;

  Clock::time_point t0;
  // Written by the sampler thread only, read after join: plain fields.
  HeartbeatAggregates agg;
  std::uint64_t seq = 0;
  std::uint64_t stalls = 0;

  Heartbeat sample(const char* kind, double t_ms, double rate) {
    Heartbeat hb;
    hb.target = cfg.target;
    hb.kind = kind;
    hb.seq = seq++;
    hb.t_ms = t_ms;
    hb.events = events();
    hb.events_per_sec = rate;
    hb.sim_time_us = static_cast<double>(std::max<std::int64_t>(
                         0, sim_time_ns())) /
                     1e3;
    hb.units_done = units_done();
    hb.units_total = units_total();
    if (hb.units_total > 0 && hb.units_done > 0 &&
        hb.units_done < hb.units_total) {
      hb.eta_s = (t_ms / 1e3) *
                 static_cast<double>(hb.units_total - hb.units_done) /
                 static_cast<double>(hb.units_done);
    }
    hb.des_depth = des_depth();
    hb.des_max_depth = des_max_depth();
    const ParallelStats ps = parallel_stats();
    hb.sched_chunks = ps.chunks_executed;
    hb.sched_steals = ps.steals;
    for (const WorkerHealth& w : parallel_worker_health()) {
      hb.sched_parks += w.parks;
      hb.sched_max_depth = std::max(hb.sched_max_depth, w.max_depth);
    }
    const prof::HostMemory mem = prof::sample_host_memory();
    if (mem.valid) {
      hb.rss_bytes = mem.rss_bytes;
      hb.peak_rss_bytes = mem.peak_rss_bytes;
    }
    hb.stalls = stalls;
    return hb;
  }

  void emit(const Heartbeat& hb) {
    // heartbeat_line re-validates: a meter that emits schema-invalid
    // records is a bug worth crashing a bench over.
    const std::string line = heartbeat_line(heartbeat_to_json(hb));
    if (out.is_open()) {
      out << line << '\n';
      out.flush();  // tail -f consumers see each tick promptly
    }
    if (cfg.stderr_line) {
      std::fputs((heartbeat_ascii(hb) + "\n").c_str(), stderr);
    }
    fold(hb);
  }

  // Mirror of aggregate_heartbeats over the emitted stream, maintained
  // incrementally so stop() needs no re-read of the file.
  void fold(const Heartbeat& hb) {
    ++agg.records;
    if (hb.kind == "tick") ++agg.ticks;
    agg.stalls = std::max(agg.stalls, hb.stalls);
    agg.events_total = hb.events;
    agg.elapsed_s = std::max(agg.elapsed_s, hb.t_ms / 1e3);
    agg.events_per_sec_max = std::max(agg.events_per_sec_max,
                                      hb.events_per_sec);
    agg.units_done = hb.units_done;
    agg.units_total = hb.units_total;
    agg.peak_rss_bytes = std::max(agg.peak_rss_bytes, hb.peak_rss_bytes);
  }

  void loop(std::stop_token st) {
    const auto interval =
        std::chrono::milliseconds(std::max(10, cfg.interval_ms));
    // The watchdog needs a finer poll than the heartbeat cadence so a
    // stall is noticed within ~a quarter of its threshold, not within
    // one (possibly long) heartbeat interval.
    auto period = interval;
    if (cfg.stall_after_s > 0.0) {
      const auto quarter = std::chrono::milliseconds(std::max<std::int64_t>(
          10, static_cast<std::int64_t>(cfg.stall_after_s * 1000.0 / 4.0)));
      period = std::min(period, quarter);
    }
    auto next_tick = t0 + interval;
    std::uint64_t tick_events = 0;  // events at the previous tick
    double tick_ms = 0.0;
    std::uint64_t sig_events = 0;
    std::uint64_t sig_units = 0;
    std::int64_t sig_sim = 0;
    auto last_change = t0;
    bool in_stall = false;
    for (;;) {
      {
        std::unique_lock lk(mu);
        cv.wait_for(lk, st, period, [] { return false; });
      }
      if (st.stop_requested()) return;
      const auto now = Clock::now();
      const double t_ms = ms_since(t0, now);
      const std::uint64_t cur_events = events();
      const std::uint64_t cur_units = units_done();
      const std::int64_t cur_sim = sim_time_ns();
      if (cur_events != sig_events || cur_units != sig_units ||
          cur_sim != sig_sim) {
        sig_events = cur_events;
        sig_units = cur_units;
        sig_sim = cur_sim;
        last_change = now;
        in_stall = false;  // progress resumed: next halt is a new episode
      } else if (cfg.stall_after_s > 0.0 && !in_stall) {
        const double stalled_s = ms_since(last_change, now) / 1e3;
        if (stalled_s >= cfg.stall_after_s) {
          in_stall = true;  // one report per episode
          ++stalls;
          const Heartbeat hb = sample("stall", t_ms, 0.0);
          emit(hb);
          const std::string snap = build_stall_snapshot(hb, stalled_s);
          if (cfg.stall_sink) {
            cfg.stall_sink(snap);
          } else {
            std::fputs(snap.c_str(), stderr);
          }
          if (cfg.abort_on_stall) {
            if (cfg.stall_sink) std::fputs(snap.c_str(), stderr);
            std::fflush(nullptr);
            // _Exit, not exit: the process is wedged; running global
            // destructors from this thread while stalled threads hold
            // locks would hang or crash past the diagnosis we just
            // printed.
            std::_Exit(kStallExitCode);
          }
        }
      }
      if (now >= next_tick) {
        const double dt_s = (t_ms - tick_ms) / 1e3;
        const double rate =
            dt_s > 0.0
                ? static_cast<double>(cur_events - tick_events) / dt_s
                : 0.0;
        emit(sample("tick", t_ms, rate));
        tick_events = cur_events;
        tick_ms = t_ms;
        while (next_tick <= now) next_tick += interval;
      }
    }
  }
};

ProgressMeter::ProgressMeter(ProgressConfig cfg)
    : impl_(std::make_unique<Impl>()) {
  impl_->cfg = std::move(cfg);
}

ProgressMeter::~ProgressMeter() {
  if (impl_ && impl_->started && !impl_->stopped) stop();
}

void ProgressMeter::start() {
  if (impl_->started) throw std::runtime_error("ProgressMeter started twice");
  impl_->started = true;
  if (!impl_->cfg.jsonl_path.empty()) {
    impl_->out.open(impl_->cfg.jsonl_path,
                    std::ios::binary | std::ios::app);
    if (!impl_->out) {
      throw std::runtime_error("cannot open heartbeat stream: " +
                               impl_->cfg.jsonl_path);
    }
  }
  reset_counters();
  set_enabled(true);
  impl_->t0 = Clock::now();
  impl_->thread =
      std::jthread([this](std::stop_token st) { impl_->loop(st); });
}

MeterSummary ProgressMeter::stop() {
  if (!impl_->started) return {};
  if (impl_->stopped) return impl_->summary;
  impl_->stopped = true;
  impl_->thread.request_stop();
  impl_->cv.notify_all();
  if (impl_->thread.joinable()) impl_->thread.join();
  // Sampler joined: safe to emit the closing record from this thread.
  const double t_ms = ms_since(impl_->t0, Clock::now());
  const double mean =
      t_ms > 0.0 ? static_cast<double>(events()) / (t_ms / 1e3) : 0.0;
  impl_->emit(impl_->sample("final", t_ms, mean));
  set_enabled(false);
  if (impl_->out.is_open()) impl_->out.close();
  if (impl_->agg.elapsed_s > 0.0) {
    impl_->agg.events_per_sec_mean =
        static_cast<double>(impl_->agg.events_total) / impl_->agg.elapsed_s;
  }
  impl_->summary.active = true;
  impl_->summary.agg = impl_->agg;
  return impl_->summary;
}

bool ProgressMeter::running() const {
  return impl_->started && !impl_->stopped;
}

namespace {

std::mutex g_meter_mu;
std::unique_ptr<ProgressMeter> g_meter;

}  // namespace

void start_global_meter(ProgressConfig cfg) {
  std::lock_guard<std::mutex> lock(g_meter_mu);
  if (g_meter) throw std::runtime_error("global progress meter already running");
  g_meter = std::make_unique<ProgressMeter>(std::move(cfg));
  g_meter->start();
}

MeterSummary stop_global_meter() {
  std::lock_guard<std::mutex> lock(g_meter_mu);
  if (!g_meter) return {};
  MeterSummary summary = g_meter->stop();
  g_meter.reset();
  return summary;
}

bool global_meter_active() {
  std::lock_guard<std::mutex> lock(g_meter_mu);
  return g_meter != nullptr && g_meter->running();
}

}  // namespace hpcos::obs::live
