// Live progress counters: the in-flight face of a running simulation.
//
// Every observability layer before this one (Registry, spans, series,
// profiler, run ledger) is post-hoc: nothing can be asked until the run
// exits. This hub is the opposite — a handful of global gauges that the
// hot layers bump while they run and that the ProgressMeter (obs/live/
// live.h) samples from its own thread to emit heartbeats and detect
// stalls.
//
// Cost discipline (same as the Registry and the profiler): one relaxed
// bool load per instrumentation site while disabled; relaxed atomic adds
// while enabled. The counters are statistics, never synchronization, and
// never feed deterministic outputs — enabling them must not perturb any
// gated metric (bench_fig4 runs with and without --progress produce
// bit-identical reports).
//
// Layering: this translation unit is dependency-free (std only) and built
// as its own bottom-level library (hpcos_live_core), because the writers
// sit below hpcos_obs — sim/simulator counts executed events and
// cluster/fwq_campaign counts finished shards — and hpcos_sim cannot link
// hpcos_obs without a cycle. The sampler side (ProgressMeter, heartbeat
// schema) lives in hpcos_obs proper.
//
// Threading: writers are the simulation/worker threads (single or many);
// the reader is the meter thread. All accessors are relaxed atomics, so
// cross-thread reads are near-consistent snapshots — exactly what a
// heartbeat needs and ThreadSanitizer-clean by construction.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hpcos::obs::live {

// Global enable switch. Armed by the ProgressMeter (or tests); one
// relaxed load per instrumentation site while off.
bool enabled();
void set_enabled(bool on);

// Zero every counter and gauge below. Call while no simulation is
// running (meter start / test setup).
void reset_counters();

// Fine-grained work counter: DES events executed, campaign iterations
// materialized. The heartbeat derives events_per_sec from its deltas and
// the watchdog treats "no change" as the primary stall signal.
void add_events(std::uint64_t n);
std::uint64_t events();

// Coarse completion units (campaign shards, bench plan points): the
// numerator/denominator of the heartbeat's ETA. Totals accumulate — a
// bench running five campaigns contributes five shard batches.
void add_units_total(std::uint64_t n);
void add_units_done(std::uint64_t n);
std::uint64_t units_total();
std::uint64_t units_done();

// Simulated-time position (monotonic max across all simulators that
// report). Updated at a coarse cadence from the DES loop.
void note_sim_time_ns(std::int64_t t_ns);
std::int64_t sim_time_ns();

// DES queue-depth gauges: last reported depth and the maximum reported
// since reset. Sampled at the same coarse cadence as the sim time.
void note_des_depth(std::size_t depth);
std::size_t des_depth();
std::size_t des_max_depth();

}  // namespace hpcos::obs::live
