// Baseline comparison for BenchReport documents (the bench_gate).
//
// bench_smoke proves every bench still emits schema-valid JSON; this module
// is the second half of the perf-regression discipline: diff the freshly
// emitted `hpcos-bench-report/1` document against a committed baseline with
// per-metric tolerances, so a metric drifting past its allowance fails CI
// with a ranked table of violations instead of rotting silently.
//
// Tolerances come from a small JSON policy document:
//
//   {
//     "schema": "hpcos-bench-tolerances/1",
//     "default": { "rel": 0.05, "abs": 1e-9 },
//     "metrics": [
//       { "pattern": "parallel.speedup", "ignore": true },   // wall clock
//       { "pattern": "*.p99_ms", "rel": 0.10 }
//     ]
//   }
//
// Patterns are glob-style with '*' wildcards; the first matching rule wins,
// falling back to "default". Rules marked "ignore" skip the metric entirely
// (host-dependent wall-clock measurements).
#pragma once

#include <string>
#include <vector>

#include "common/json.h"

namespace hpcos::obs {

inline constexpr const char* kBenchTolerancesSchema =
    "hpcos-bench-tolerances/1";

struct MetricTolerance {
  // Allowed drift: a comparison passes when
  //   |current - baseline| <= max(abs, rel * |baseline|).
  double rel = 0.05;
  double abs = 1e-9;
  bool ignore = false;  // skip the metric (wall-clock, host-dependent)
};

struct ToleranceRule {
  std::string pattern;  // glob over the metric name ('*' wildcards)
  MetricTolerance tolerance;
};

struct DiffPolicy {
  MetricTolerance fallback;
  std::vector<ToleranceRule> rules;  // first match wins

  const MetricTolerance& lookup(const std::string& metric) const;
};

// '*'-wildcard glob match over the full string (no character classes).
bool glob_match(const std::string& pattern, const std::string& text);

// Parse a tolerance policy document; throws std::runtime_error on a wrong
// schema string or malformed entries.
DiffPolicy parse_tolerance_policy(const JsonValue& doc);

// Read + parse a whole JSON document from a file; throws std::runtime_error
// (with the path) on open/parse failure. Shared by the bench_diff and
// trend CLIs so every tool reports file problems identically.
JsonValue load_json_file(const std::string& path);

// load_json_file + parse_tolerance_policy: the one call sites use to go
// from a --tolerances path to a DiffPolicy.
DiffPolicy load_tolerance_policy(const std::string& path);

struct MetricDelta {
  std::string metric;  // metric name, or "<name>.p50" for a percentile
  double baseline = 0.0;
  double current = 0.0;
  double abs_delta = 0.0;
  double rel_delta = 0.0;  // abs_delta / max(|baseline|, DBL_MIN)
  MetricTolerance tolerance;
  bool violation = false;
};

struct DiffResult {
  // Everything compared (ignored metrics excluded), in report order.
  std::vector<MetricDelta> deltas;
  // Out-of-tolerance comparisons, ranked worst-first by relative delta.
  std::vector<MetricDelta> violations;
  // Baseline metrics the current report no longer emits — treated as
  // failures (a silently dropped metric is a broken gate).
  std::vector<std::string> missing_in_current;
  // Current metrics absent from the baseline — reported, not failed
  // (refresh the baseline to start tracking them).
  std::vector<std::string> new_in_current;

  bool ok() const { return violations.empty() && missing_in_current.empty(); }
};

// Compare two schema-valid bench reports under `policy`. Throws
// std::runtime_error when either document fails validate_bench_report or
// the two documents describe different benches.
DiffResult diff_reports(const JsonValue& current, const JsonValue& baseline,
                        const DiffPolicy& policy);

class BenchReport;

// Machine-readable gate result (the bench_diff --json surface): fold a
// DiffResult into a BenchReport named "bench_diff" so CI and the explain
// tooling consume gate outcomes through the one schema they already
// parse, instead of scraping the violation table. Emits gate.ok,
// compared/violation/missing/new counts, the worst relative delta, and
// one gate.violation.<metric>.rel entry per out-of-tolerance metric.
BenchReport diff_result_report(const DiffResult& result,
                               const std::string& bench_name, bool quick);

}  // namespace hpcos::obs
