// Counter/histogram registry: the substrate's PMU-and-/proc stand-in.
//
// The paper's methodology (§4.2) is to make every kernel mechanism
// quantifiable — ftrace for event attribution, PMU counters for time
// attribution. The Registry gives the simulated kernels the same property:
// each subsystem registers named counters (monotonic event counts) and
// log-histograms (latency/size distributions) once at construction, holds
// the returned raw pointer, and bumps it on the hot path.
//
// Hot-path cost discipline:
//   * Instrumented components hold a nullable Counter*/LogHistogram*; a
//     site compiles to one branch plus one increment when observability is
//     on, and exactly one branch when it is off (registry == nullptr at
//     wiring time — see obs::bump / obs::observe).
//   * No locks anywhere on the increment path. Registration (name lookup)
//     allocates, but follows the simulator's single-writer discipline: a
//     Registry belongs to one simulation (one SimNode / one campaign) and
//     is never shared across host worker threads. Parallel campaign code
//     accumulates shard-locally and folds into the Registry during the
//     serial merge (see cluster/fwq_campaign.cpp).
//
// Counter naming convention (see EXPERIMENTS.md "Observability"):
//   <subsystem>.<object>[.<detail>]   e.g. ikc.to_host.posted,
//   offload.requests, lwk.sched.dispatches, linux.tlb.shootdown_ipis,
//   fabric.busy_ns, fwq.topk.evictions. Units are encoded as the last
//   name segment when not "events" (_ns, _us, _bytes).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace hpcos::obs {

// Monotonically increasing event count. Plain (non-atomic) on purpose:
// single-writer per simulation, zero synchronization on the hot path.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

// One branch when disabled, one increment when enabled.
inline void bump(Counter* c, std::uint64_t n = 1) {
  if (c != nullptr) c->add(n);
}
inline void observe(LogHistogram* h, double value) {
  if (h != nullptr) h->add(value);
}

// Point-in-time view of a Registry, with value-delta support so a
// measurement window can be isolated: snapshot before, snapshot after,
// delta(after, before).
struct Snapshot {
  struct CounterEntry {
    std::string name;
    std::uint64_t value = 0;
  };
  struct HistogramEntry {
    std::string name;
    std::uint64_t count = 0;
    double p50 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
  };
  // Both sorted by name (registries enumerate deterministically).
  std::vector<CounterEntry> counters;
  std::vector<HistogramEntry> histograms;

  // Counters subtract; histogram entries keep the *current* quantiles with
  // the count difference (log-binned quantiles are not invertible, and the
  // window's distribution is dominated by the window's samples in every
  // intended use).
  static Snapshot delta(const Snapshot& after, const Snapshot& before);
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Find-or-create. The returned pointer is stable for the Registry's
  // lifetime; callers cache it at wiring time and never look up again.
  Counter* counter(const std::string& name);
  // Find-or-create with log-spaced bins over [min_value, max_value]. A
  // re-registration under the same name returns the existing histogram
  // (the first registration's layout wins).
  LogHistogram* histogram(const std::string& name, double min_value,
                          double max_value, std::size_t num_bins);

  // Lookup without creation (nullptr when absent) — for tests and report
  // tools.
  const Counter* find_counter(const std::string& name) const;
  const LogHistogram* find_histogram(const std::string& name) const;

  std::size_t counter_count() const { return counters_.size(); }
  std::size_t histogram_count() const { return histograms_.size(); }

  Snapshot snapshot() const;

 private:
  template <typename T>
  struct Named {
    std::string name;
    std::unique_ptr<T> value;
  };
  // Linear-scan vectors: registration happens O(subsystems) times at
  // wiring, never on the hot path, and enumeration order must be
  // deterministic.
  std::vector<Named<Counter>> counters_;
  std::vector<Named<LogHistogram>> histograms_;
};

}  // namespace hpcos::obs
