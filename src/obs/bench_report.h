// Machine-readable benchmark results (the BENCH_*.json trajectory format).
//
// Every bench target (bench_fig*, bench_table*, bench_ablation*,
// bench_isolation) keeps its human-readable tables on stdout and
// additionally emits one BenchReport JSON document behind `--json <path>`.
// The schema is deliberately small and stable so CI can regression-track
// any metric across PRs:
//
//   {
//     "schema":  "hpcos-bench-report/1",
//     "bench":   "<target name>",
//     "quick":   <bool>,               // --quick smoke mode?
//     "seed":    <number>,             // 0 when the bench is seedless
//     "platform": { "host_parallelism": <number> },
//     "metrics": [
//       { "name": "<dotted.metric.name>", "unit": "<unit>",
//         "value": <finite number>,
//         "percentiles": { "p50": ..., "p99": ... }   // optional
//       }, ...
//     ]
//   }
//
// Validation (bench_smoke ctest job, tests/test_obs.cpp): required keys
// present, schema string matches, metrics non-empty, every value finite.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"

namespace hpcos::obs {

namespace ts {
class TimeSeries;
}  // namespace ts

inline constexpr const char* kBenchReportSchema = "hpcos-bench-report/1";

struct BenchMetric {
  std::string name;
  std::string unit;  // "ratio", "us", "ms", "count", "percent", ...
  double value = 0.0;
  // Optional percentile map ("p50" -> value); empty when not applicable.
  std::map<std::string, double> percentiles;
};

class BenchReport {
 public:
  BenchReport(std::string bench_name, bool quick, std::uint64_t seed = 0);

  void add_metric(const std::string& name, const std::string& unit,
                  double value);
  void add_metric(BenchMetric metric);

  // Attach a streaming series dump under the optional top-level "series"
  // array: {name, unit, resolution_us, coarsens, buckets:[{t_us, min, max,
  // sum, count}, ...]} with empty buckets elided. The bench_diff gate
  // compares only "metrics", so series are informational (plot fodder),
  // never regression-gated.
  void add_series(const std::string& name, const std::string& unit,
                  const ts::TimeSeries& series);

  // Attach the canonical config document (cluster/config_json.h) that
  // produced this run. The run ledger (obs/runlog) keys the record by its
  // confighash; when no config is attached, maybe_write_report falls back
  // to the bench identity (name, quick, seed) so every target still
  // ledgers without per-target plumbing.
  void set_config(JsonValue config) { config_ = std::move(config); }
  // Null when no config was attached.
  const JsonValue& config() const { return config_; }

  const std::string& bench_name() const { return bench_name_; }
  bool quick() const { return quick_; }
  std::uint64_t seed() const { return seed_; }
  const std::vector<BenchMetric>& metrics() const { return metrics_; }
  // The JSON series entries exactly as to_json() emits them (runlog
  // digests these).
  const std::vector<JsonValue>& series_json() const { return series_; }

  std::size_t metric_count() const { return metrics_.size(); }
  std::size_t series_count() const { return series_.size(); }

  JsonValue to_json() const;
  // Write the pretty-printed document; throws std::runtime_error on I/O
  // failure.
  void write(const std::string& path) const;

 private:
  std::string bench_name_;
  bool quick_ = false;
  std::uint64_t seed_ = 0;
  JsonValue config_;  // null unless set_config was called
  std::vector<BenchMetric> metrics_;
  std::vector<JsonValue> series_;
};

// Schema validation of a parsed report. Returns an empty string when the
// document is valid; otherwise a one-line description of the first
// violation (missing key, wrong schema, empty metrics, non-finite value).
std::string validate_bench_report(const JsonValue& doc);

// Where a bench run's results and telemetry flow — every output sink the
// shared flag plumbing controls, in one struct so parse_bench_options
// fills it and maybe_write_report consumes it without each target (or
// each new sink) threading more fields through BenchOptions.
struct BenchSinks {
  // --profile: host-side self-profiler (obs/prof). maybe_write_report
  // appends the collected hotspot metrics (prof.*.count gated,
  // host.prof.* / host.mem.* ignore-listed) and prints the ranked table.
  bool profile = false;
  // --json <path>: write the BenchReport document there.
  std::string json_path;
  // --ledger <path>: append one run record (obs/runlog) — config hash,
  // metric snapshot, series digests, host summary.
  std::string ledger_path;
  // --progress[=interval_ms]: run a live ProgressMeter (obs/live) for
  // the duration of the target — heartbeat JSONL stream plus an ASCII
  // line per tick on stderr; final aggregates land in the report under
  // host.progress.* (ignore-listed by the gate/trend tolerances).
  bool progress = false;
  int progress_interval_ms = 1000;
  // --progress-file <path>: heartbeat stream destination. Defaults to
  // "<argv0 basename>.heartbeat.jsonl" in the working directory (the
  // pattern is gitignored).
  std::string heartbeat_path;
  // --watchdog[=seconds]: arm the stall watchdog (implies --progress
  // machinery); when event progress halts this long, dump a diagnostic
  // snapshot to stderr. Default threshold 30 s.
  double watchdog_stall_s = 0.0;
  // --watchdog-abort: escalate a detected stall to std::_Exit(70) so CI
  // hangs become diagnosable failures instead of timeouts.
  bool watchdog_abort = false;
};

// Shared bench-target command line: every bench main() calls this first.
//   --quick                  shrink the run for the bench_smoke ctest job
//   --json/--profile/--ledger/--progress[=ms]/--progress-file/
//   --watchdog[=s]/--watchdog-abort   -> see BenchSinks
// All sinks are handled entirely in parse_bench_options (arming) and
// maybe_write_report (draining), so every bench target and analysis CLI
// gets them with zero per-target plumbing. Unknown arguments are left
// for the target to interpret (the google-benchmark ablations forward
// the remainder to benchmark::Initialize).
struct BenchOptions {
  bool quick = false;
  BenchSinks sinks;
  // argv with the recognized flags removed (argv[0] preserved).
  std::vector<char*> remaining;
};
BenchOptions parse_bench_options(int argc, char** argv);

// Drain the sinks: stop the progress meter (folding host.progress.* /
// host.watchdog.* aggregates into the report), append the profiler
// section, write the JSON report, append the ledger record. No-op for
// sinks that weren't requested. Non-const: sink sections are appended
// here so every bench target gets them without per-target plumbing.
void maybe_write_report(BenchReport& report, const BenchOptions& opts);

}  // namespace hpcos::obs
