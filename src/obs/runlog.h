// Append-only JSONL run ledger: the repo's memory across runs.
//
// A single run is already deeply observable (Registry, spans, series,
// host profile); this module records *that a run happened* so trends,
// regressions, and config-space comparisons become queryable after the
// fact. Each line of a ledger file is one self-contained JSON record:
//
//   {
//     "schema": "hpcos-run-ledger/1",
//     "target": "bench_fig4_fwq_cdf",        // bench / CLI name
//     "quick": true,
//     "seed": 2021,
//     "config_hash": "9a3f...16 hex",        // confighash of "config"
//     "config": { ... },                     // canonical config document
//     "metrics": [ {name, unit, value, percentiles?}, ... ],
//     "series": [ {name, digest, sum, count}, ... ],
//     "host": {                              // the non-deterministic part
//       "timestamp": "2026-08-08T12:00:00Z", // injected, never sampled here
//       "parallelism": 8,
//       "metrics": [ ...host.* metrics... ],
//       "profile": [ {scope, count, self_ms, total_ms}, ... ]
//     }
//   }
//
// Determinism contract: everything OUTSIDE "host" is bit-identical across
// host thread counts for a fixed config (deterministic_line() is the
// tested witness; host.* metrics are routed into "host" by construction).
// The timestamp is *injected* by the caller (flag/env/clock at the edge),
// so record construction itself is a pure function — tests can pin whole
// lines.
//
// Appends are crash-safe at line granularity: one record is serialized to
// a single newline-terminated line and written with one write call in
// O_APPEND mode, so a torn write can only damage the final line — which
// the lenient reader skips and counts, never aborts on.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/json.h"

namespace hpcos::obs {

class BenchReport;
namespace prof {
struct Profile;
}  // namespace prof

inline constexpr const char* kRunLedgerSchema = "hpcos-run-ledger/1";

// Build a run record from a finished report. `config` defines the record's
// config_hash (confighash canonical digest); pass the real simulation
// config when the target attached one, or the bench identity fallback.
// `timestamp` is stored verbatim under "host" (empty allowed). `profile`
// (optional) contributes the compact host-profile summary: top scopes by
// self time.
JsonValue make_run_record(const BenchReport& report, const JsonValue& config,
                          const std::string& timestamp,
                          const prof::Profile* profile = nullptr);

// Schema validation. Returns "" when valid, else a one-line description.
// Unknown schema strings are invalid (the strict reader rejects them).
std::string validate_run_record(const JsonValue& record);

// The record as one canonical ledger line (no trailing newline). Throws
// when the record fails validate_run_record.
std::string run_record_line(const JsonValue& record);

// Append one record to the ledger at `path` (created if missing): a
// single newline-terminated write in append mode. Throws on I/O failure.
void append_run_record(const std::string& path, const JsonValue& record);

// Canonical serialization of the record with the "host" member removed —
// the deterministic half of the record. Byte-equal across host thread
// counts for a fixed config (TSan-labeled test in
// tests/test_parallel_determinism.cpp).
std::string deterministic_line(const JsonValue& record);
// FNV-1a 64 hex digest of deterministic_line().
std::string deterministic_digest_hex(const JsonValue& record);

struct RunLedger {
  std::vector<JsonValue> records;  // file order == append order
  std::size_t skipped = 0;         // lenient mode: damaged lines skipped
};

// Parse ledger text. Strict mode throws on the first malformed line or
// unknown schema version (CI gates want hard failures); lenient mode
// skips and counts damaged or unknown-schema lines and never aborts
// (trend over a ledger with one torn tail line must still work).
RunLedger parse_run_ledger(const std::string& text, bool strict = true);

// Read + parse a ledger file. A missing file is an error in strict mode
// and an empty ledger in lenient mode.
RunLedger read_run_ledger(const std::string& path, bool strict = true);

}  // namespace hpcos::obs
