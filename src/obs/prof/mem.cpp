#include "obs/prof/mem.h"

#include <algorithm>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

#ifdef __linux__
#include <unistd.h>
#endif

namespace hpcos::obs::prof {
namespace {

// Immortal (leaked) registry: allocation counters may be bumped from
// scheduler workers during static destruction.
struct MemState {
  std::mutex mutex;
  std::vector<std::pair<std::string, std::unique_ptr<MemoryCounter>>>
      counters;
};

MemState& mem_state() {
  static MemState* s = new MemState;
  return *s;
}

}  // namespace

MemoryCounter* memory_counter(const std::string& name) {
  MemState& s = mem_state();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (const auto& [n, c] : s.counters) {
    if (n == name) return c.get();
  }
  s.counters.emplace_back(name, std::make_unique<MemoryCounter>());
  return s.counters.back().second.get();
}

std::vector<MemoryCounterView> memory_counters() {
  MemState& s = mem_state();
  std::vector<MemoryCounterView> out;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    out.reserve(s.counters.size());
    for (const auto& [name, c] : s.counters) {
      out.push_back(MemoryCounterView{name, c->bytes(), c->events()});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MemoryCounterView& a, const MemoryCounterView& b) {
              return a.name < b.name;
            });
  return out;
}

HostMemory sample_host_memory() {
  HostMemory m;
#ifdef __linux__
  const auto page = static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
  {
    std::ifstream statm("/proc/self/statm");
    std::uint64_t vm_pages = 0;
    std::uint64_t rss_pages = 0;
    if (statm >> vm_pages >> rss_pages) {
      m.vm_bytes = vm_pages * page;
      m.rss_bytes = rss_pages * page;
      m.valid = true;
    }
  }
  {
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
      if (line.rfind("VmHWM:", 0) == 0) {
        std::istringstream fields(line.substr(6));
        std::uint64_t kib = 0;
        if (fields >> kib) m.peak_rss_bytes = kib * 1024;
        break;
      }
    }
  }
#endif
  return m;
}

}  // namespace hpcos::obs::prof
