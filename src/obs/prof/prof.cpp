#include "obs/prof/prof.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace hpcos::obs::prof {
namespace {

constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

struct Event {
  ScopeId id = 0;
  std::uint32_t depth = 0;  // nesting depth at entry, per thread
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
};

// Single-writer ring with a release-published size. The owner thread
// appends; collect() acquire-loads size_ and reads the prefix, which the
// release store ordered after the event payload write.
struct ThreadBuffer {
  explicit ThreadBuffer(std::size_t capacity) : events(capacity) {}

  void record(const Event& e) {
    const std::size_t n = size.load(std::memory_order_relaxed);
    if (n >= events.size()) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    events[n] = e;
    size.store(n + 1, std::memory_order_release);
  }

  std::vector<Event> events;
  std::atomic<std::size_t> size{0};
  std::atomic<std::uint64_t> dropped{0};
};

// Immortal global state (leaked on purpose: scheduler worker threads may
// record during static destruction of the main thread's objects).
struct State {
  std::mutex mutex;
  std::vector<std::string> names;                     // ScopeId -> name
  std::unordered_map<std::string, ScopeId> ids;       // name -> ScopeId
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;  // registration order
  std::size_t capacity = kDefaultCapacity;
  std::atomic<bool> enabled{false};
};

State& state() {
  static State* s = new State;
  return *s;
}

thread_local ThreadBuffer* tl_buffer = nullptr;
thread_local std::uint32_t tl_depth = 0;

ThreadBuffer& thread_buffer() {
  if (tl_buffer == nullptr) {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.buffers.push_back(std::make_unique<ThreadBuffer>(s.capacity));
    tl_buffer = s.buffers.back().get();
  }
  return *tl_buffer;
}

// Per-buffer reconstruction node. Events are recorded at scope *exit*, so
// a buffer is a postorder stream: every child precedes its parent, and
// any pending event deeper than the current one belongs to its subtree
// (an intervening same-depth parent would already have consumed it).
struct Node {
  ScopeId id = 0;
  std::int64_t total = 0;
  std::int64_t self = 0;
  std::ptrdiff_t parent = -1;
};

}  // namespace

ScopeId intern(const std::string& name) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.ids.find(name);
  if (it != s.ids.end()) return it->second;
  const auto id = static_cast<ScopeId>(s.names.size());
  s.names.push_back(name);
  s.ids.emplace(name, id);
  return id;
}

std::string scope_name(ScopeId id) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return id < s.names.size() ? s.names[id] : std::string("<unknown>");
}

bool enabled() { return state().enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  state().enabled.store(on, std::memory_order_relaxed);
}

void set_thread_buffer_capacity(std::size_t events) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.capacity = std::max<std::size_t>(events, 16);
}

void reset() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (auto& b : s.buffers) {
    b->size.store(0, std::memory_order_relaxed);
    b->dropped.store(0, std::memory_order_relaxed);
  }
}

std::int64_t now_ns() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

ScopedTimer::ScopedTimer(ScopeId id) {
  if (!enabled()) return;
  armed_ = true;
  id_ = id;
  ++tl_depth;
  start_ = now_ns();
}

ScopedTimer::~ScopedTimer() {
  if (!armed_) return;
  const std::int64_t end = now_ns();
  --tl_depth;
  thread_buffer().record(Event{id_, tl_depth, start_, end});
}

const ScopeStat* Profile::find(const std::string& name) const {
  for (const auto& s : scopes) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::int64_t Profile::sum_self_ns() const {
  std::int64_t sum = 0;
  for (const auto& s : scopes) sum += s.self_ns;
  return sum;
}

std::string Profile::folded_text() const {
  std::string out;
  for (const auto& [path, value] : folded) {
    out += path;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }
  return out;
}

Profile collect() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);

  struct NameStat {
    std::uint64_t count = 0;
    std::int64_t total = 0;
    std::int64_t self = 0;
  };
  // Name- and path-keyed maps: aggregation order does not affect integer
  // sums, and sorted keys make the output deterministic.
  std::map<std::string, NameStat> by_name;
  std::map<std::string, std::int64_t> folded;

  Profile profile;
  for (const auto& buf : s.buffers) {
    const std::size_t n = buf->size.load(std::memory_order_acquire);
    profile.dropped += buf->dropped.load(std::memory_order_relaxed);
    if (n == 0) continue;
    ++profile.threads;
    profile.events += n;

    // Rebuild the scope forest from the postorder stream.
    std::vector<Node> nodes(n);
    std::vector<std::uint32_t> depth(n);
    std::vector<std::size_t> pending;  // indices awaiting a parent
    for (std::size_t i = 0; i < n; ++i) {
      const Event& e = buf->events[i];
      nodes[i].id = e.id;
      nodes[i].total = e.end_ns - e.start_ns;
      depth[i] = e.depth;
      std::int64_t child_total = 0;
      while (!pending.empty() && depth[pending.back()] > e.depth) {
        const std::size_t c = pending.back();
        pending.pop_back();
        nodes[c].parent = static_cast<std::ptrdiff_t>(i);
        child_total += nodes[c].total;
      }
      nodes[i].self = std::max<std::int64_t>(nodes[i].total - child_total, 0);
      pending.push_back(i);
    }
    for (const std::size_t r : pending) profile.root_total_ns += nodes[r].total;

    // Paths, memoized child-to-parent (parents appear after children in
    // the stream, so walk the chain on demand and cache).
    std::vector<std::string> paths(n);
    std::vector<bool> have_path(n, false);
    auto path_of = [&](std::size_t i, auto&& self_fn) -> const std::string& {
      if (!have_path[i]) {
        const std::string name = i < n && nodes[i].id < s.names.size()
                                     ? s.names[nodes[i].id]
                                     : std::string("<unknown>");
        std::string clean = name;
        std::replace(clean.begin(), clean.end(), ';', ':');
        if (nodes[i].parent < 0) {
          paths[i] = clean;
        } else {
          paths[i] =
              self_fn(static_cast<std::size_t>(nodes[i].parent), self_fn) +
              ";" + clean;
        }
        have_path[i] = true;
      }
      return paths[i];
    };

    for (std::size_t i = 0; i < n; ++i) {
      const std::string& name =
          nodes[i].id < s.names.size() ? s.names[nodes[i].id]
                                       : std::string("<unknown>");
      NameStat& stat = by_name[name];
      ++stat.count;
      stat.total += nodes[i].total;
      stat.self += nodes[i].self;
      if (nodes[i].self > 0) folded[path_of(i, path_of)] += nodes[i].self;
    }
  }

  profile.scopes.reserve(by_name.size());
  for (const auto& [name, stat] : by_name) {
    profile.scopes.push_back(
        ScopeStat{name, stat.count, stat.total, stat.self});
  }
  std::sort(profile.scopes.begin(), profile.scopes.end(),
            [](const ScopeStat& a, const ScopeStat& b) {
              if (a.self_ns != b.self_ns) return a.self_ns > b.self_ns;
              return a.name < b.name;
            });
  profile.folded.assign(folded.begin(), folded.end());
  return profile;
}

}  // namespace hpcos::obs::prof
