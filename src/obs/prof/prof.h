// Host-side self-profiler: where does the *simulator's own* time go?
//
// Every observability layer so far (Registry, spans, attribution ledger,
// TimeSeries) measures simulated time. This module points the same
// discipline at the host: the ROADMAP's full-Fugaku scale rework ("profile
// and rework the DES hot loop") needs the simulator's host-side cost
// decomposed into a measurable signal before any calendar-queue or
// arena/SoA change can be evidence-driven.
//
// Design (mirrors the Registry's hot-path cost rules):
//   * PROF_SCOPE("des.event.fire") opens a steady_clock-timed scope. A
//     site compiles to one branch when profiling is disabled (the armed
//     check), and two clock reads plus one ring-buffer append when it is
//     enabled. No locks on the hot path.
//   * Each thread writes completed scopes into its own pre-sized ring
//     buffer (registered once per thread under a mutex, written
//     single-writer afterwards). The only cross-thread handshake is a
//     release-store of the buffer's size, acquire-loaded by collect() —
//     ThreadSanitizer-clean by construction.
//   * collect() merges every thread's buffer into one Profile: a ranked
//     self/total-time hotspot table keyed by scope *name* (scope fire
//     counts are a pure function of the simulated work, so the merged
//     counts are bit-identical across host thread counts — the
//     determinism contract the tests pin) and a folded-stack view keyed
//     by the host call path (input format of flamegraph.pl/speedscope,
//     validated by sim::validate_folded_stack).
//   * Buffers never wrap: a full buffer drops new scopes and counts the
//     drops, because silently overwriting parents would corrupt the
//     nesting reconstruction. Size the buffer for the measurement window
//     (set_thread_buffer_capacity) and reset() between windows.
//
// Scope naming follows the repo-wide counter rule:
//   <subsystem>.<object>[.<detail>]  e.g. des.fire.linux.tick, fwq.shard.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hpcos::obs::prof {

// Stable id for a scope name. Interning allocates (mutex + map) and is
// meant to run once per call site (PROF_SCOPE caches it in a function-
// local static), never per fire.
using ScopeId = std::uint32_t;
ScopeId intern(const std::string& name);
std::string scope_name(ScopeId id);

// Global enable switch (relaxed atomic; one load per scope entry).
bool enabled();
void set_enabled(bool on);

// Ring capacity, in scope events, for per-thread buffers created after
// this call (existing buffers keep their size). Default 1<<16 (~2 MiB per
// participating thread).
void set_thread_buffer_capacity(std::size_t events);

// Clear every thread's buffer and drop counters. Callers must quiesce
// first: no PROF_SCOPE may be open on any thread (between parallel_for
// regions the scheduler's workers are parked, which is the intended
// reset point).
void reset();

// Nanoseconds on the process-local steady clock (epoch = first call).
// The profiler's own timestamps, exposed so other host-side telemetry
// (scheduler park timelines, DES handler attribution) shares one clock.
std::int64_t now_ns();

class ScopedTimer {
 public:
  explicit ScopedTimer(ScopeId id);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  // Whether this instance is recording (profiler was enabled at entry).
  bool armed() const { return armed_; }
  // Entry timestamp (now_ns clock); 0 when not armed.
  std::int64_t start_ns() const { return start_; }

 private:
  ScopeId id_ = 0;
  std::int64_t start_ = 0;
  bool armed_ = false;
};

#define HPCOS_PROF_CONCAT2(a, b) a##b
#define HPCOS_PROF_CONCAT(a, b) HPCOS_PROF_CONCAT2(a, b)
// Scoped hotspot probe. The id interns once (function-local static); the
// timer is one branch when the profiler is disabled.
#define PROF_SCOPE(name)                                           \
  static const ::hpcos::obs::prof::ScopeId HPCOS_PROF_CONCAT(      \
      hpcos_prof_id_, __LINE__) = ::hpcos::obs::prof::intern(name); \
  ::hpcos::obs::prof::ScopedTimer HPCOS_PROF_CONCAT(               \
      hpcos_prof_scope_, __LINE__)(                                \
      HPCOS_PROF_CONCAT(hpcos_prof_id_, __LINE__))

// Merged per-name statistics. total_ns sums instance durations (a
// recursive scope contributes once per instance, so self-recursion
// inflates total but never self); self_ns subtracts time covered by
// nested scopes, so self times sum correctly at every depth.
struct ScopeStat {
  std::string name;
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
  std::int64_t self_ns = 0;
};

struct Profile {
  // Ranked by self_ns descending, name ascending on ties. Counts are
  // bit-identical across host thread counts; times are host-dependent.
  std::vector<ScopeStat> scopes;
  // Folded-stack aggregation: host call path ("a;b;c") -> summed self
  // ns, path-sorted (deterministic, diffable). Zero-self paths omitted.
  std::vector<std::pair<std::string, std::int64_t>> folded;
  std::uint64_t threads = 0;  // thread buffers merged
  std::uint64_t events = 0;   // scope events merged
  std::uint64_t dropped = 0;  // scope events lost to full buffers
  // Sum of root-scope durations. By construction sum_self_ns() equals
  // this exactly, so checking it against a wall-clock measurement of the
  // profiled region validates the whole accounting chain.
  std::int64_t root_total_ns = 0;

  const ScopeStat* find(const std::string& name) const;
  std::int64_t sum_self_ns() const;
  // "<path> <self-ns>\n" lines, the flamegraph.pl/speedscope input
  // format (sim::validate_folded_stack accepts it).
  std::string folded_text() const;
};

// Merge every registered thread buffer (snapshot; buffers keep their
// contents until reset()).
Profile collect();

}  // namespace hpcos::obs::prof
