// Host memory observability: per-subsystem allocation counters and
// process RSS sampling.
//
// The ROADMAP's full-Fugaku scale item plans an arena/SoA conversion of
// the per-node state; this module establishes the measurement baseline it
// will be judged against. Two instruments:
//
//   * MemoryCounter — a named (bytes, events) pair bumped at the
//     subsystem's allocation sites (trace rings, time-series buckets,
//     campaign shard accumulators, scheduler deque buffers). Atomic
//     because host worker threads allocate concurrently; relaxed, since
//     the counters are statistics, not synchronization.
//   * sample_host_memory() — current VmSize/VmRSS from /proc/self/statm
//     and peak RSS (VmHWM) from /proc/self/status. Returns valid=false
//     where procfs is unavailable.
//
// Names follow the repo rule <subsystem>.<object>[.<detail>] with the
// unit as the last segment (always _bytes here).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace hpcos::obs::prof {

class MemoryCounter {
 public:
  void add(std::uint64_t n) {
    bytes_.fetch_add(n, std::memory_order_relaxed);
    events_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t events() const {
    return events_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> events_{0};
};

// Find-or-create; the returned pointer is stable for process lifetime
// (Registry discipline: look up once at wiring time, bump forever).
MemoryCounter* memory_counter(const std::string& name);

struct MemoryCounterView {
  std::string name;
  std::uint64_t bytes = 0;
  std::uint64_t events = 0;
};
// Name-sorted snapshot of every registered counter.
std::vector<MemoryCounterView> memory_counters();

struct HostMemory {
  std::uint64_t vm_bytes = 0;        // VmSize
  std::uint64_t rss_bytes = 0;       // VmRSS
  std::uint64_t peak_rss_bytes = 0;  // VmHWM (high-water mark)
  bool valid = false;
};
HostMemory sample_host_memory();

}  // namespace hpcos::obs::prof
