// Cross-run trend analysis over a run ledger (obs/runlog).
//
// The ledger answers "what ran"; this module answers "how is it moving".
// Records group by (target, config hash) — within a group every run is
// the same experiment by the confighash contract, so any metric movement
// is a code change, a perf change, or host noise (host.* metrics never
// reach the deterministic record section and never appear here). Three
// analyses, all deterministic over a fixed ledger:
//
//   * regressions — the newest run's metrics vs the median of all prior
//     runs, judged by the SAME tolerance policy the bench_gate uses
//     (obs/bench_diff DiffPolicy: glob rules, ignore list, rel/abs
//     allowance). One policy file governs both per-commit gating and
//     cross-run trend flags.
//   * drift — robust median/MAD changepoint per metric series: the split
//     maximizing |median(before) - median(after)| scaled by the series
//     MAD. Catches slow multi-run creep that per-pair tolerance checks
//     miss.
//   * sparklines — a compact ASCII ramp of each metric's history for the
//     trend table.
//
// tools/trend is the CLI front-end; tests/test_trend.cpp pins the
// analyses, including the injected-regression fixture the trend_gate CI
// job replays.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/json.h"
#include "obs/bench_diff.h"

namespace hpcos::obs::trend {

// One metric's history within a group, in ledger append order. Runs that
// do not emit the metric contribute no entry (values are positional, not
// per-record-index).
struct MetricSeries {
  std::string name;
  std::string unit;
  std::vector<double> values;
};

struct RunGroup {
  std::string target;
  std::string config_hash;
  std::size_t runs = 0;                 // records in this group
  std::vector<MetricSeries> metrics;    // first-seen order
};

// Group ledger records by (target, config_hash), groups in first-seen
// order — deterministic for a fixed ledger. Percentile entries flatten to
// "<name>.<pN>" exactly as bench_diff does, so tolerance globs match the
// same names in both tools.
std::vector<RunGroup> group_records(const std::vector<JsonValue>& records);

// Batch median (copies + sorts). Returns 0 for an empty set.
double median(std::vector<double> values);
// Median absolute deviation around `center`.
double mad(const std::vector<double>& values, double center);

// ASCII ramp sparkline of the series scaled to its own min..max, one
// glyph per value (the last `max_width` values when longer). Constant
// series render as a flat mid-ramp line.
std::string sparkline(const std::vector<double>& values,
                      std::size_t max_width = 48);

struct Regression {
  std::string target;
  std::string config_hash;
  std::string metric;
  double baseline = 0.0;   // median of all runs before the newest
  double current = 0.0;    // newest run's value
  double rel_delta = 0.0;  // |delta| / max(|baseline|, DBL_MIN)
  MetricTolerance tolerance;
};

// Flag metrics whose newest value drifted out of tolerance vs the median
// of their prior history. Groups with fewer than 2 runs and metrics the
// policy ignores are skipped. Ranked worst-first by relative delta.
std::vector<Regression> find_regressions(const std::vector<RunGroup>& groups,
                                         const DiffPolicy& policy);

struct Drift {
  std::string target;
  std::string config_hash;
  std::string metric;
  std::size_t split = 0;      // first index of the "after" segment
  double before_median = 0.0;
  double after_median = 0.0;
  double score = 0.0;         // |after - before| / MAD scale
};

// Robust changepoint scan per metric series with >= 2*min_segment values:
// report the best split when its score exceeds `min_score`. The MAD scale
// has a small relative floor so exactly-constant histories cannot divide
// by zero (any step on a constant series is a clean detection).
std::vector<Drift> find_drift(const std::vector<RunGroup>& groups,
                              double min_score = 6.0,
                              std::size_t min_segment = 3);

// OpenMetrics exposition of the grouped view: for every group metric,
//   hpcos_trend{target=...,config=...,metric=...,stat="last"|"median"} v
//   hpcos_trend_runs{target=...,config=...} n
// terminated by "# EOF". Round-trips through ts::parse_openmetrics.
std::string trend_openmetrics_text(const std::vector<RunGroup>& groups);

}  // namespace hpcos::obs::trend
