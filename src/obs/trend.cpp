#include "obs/trend.h"

#include <algorithm>
#include <cfloat>
#include <cmath>
#include <sstream>

namespace hpcos::obs::trend {

namespace {

// Glyph ramp, lowest to highest value.
constexpr const char* kRamp = ".:-=+*#%@";
constexpr std::size_t kRampLevels = 9;

std::string escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

MetricSeries* find_or_add_metric(RunGroup& group, const std::string& name,
                                 const std::string& unit) {
  for (MetricSeries& m : group.metrics) {
    if (m.name == name) return &m;
  }
  group.metrics.push_back(MetricSeries{name, unit, {}});
  return &group.metrics.back();
}

// MAD pooled around per-segment medians: robust noise scale that a level
// shift between the segments does not inflate (a plain whole-series MAD
// would absorb the very step we are trying to score).
double pooled_segment_mad(const std::vector<double>& values,
                          std::size_t split, double med_before,
                          double med_after) {
  std::vector<double> dev;
  dev.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    dev.push_back(std::abs(values[i] - (i < split ? med_before : med_after)));
  }
  return median(std::move(dev));
}

}  // namespace

std::vector<RunGroup> group_records(const std::vector<JsonValue>& records) {
  std::vector<RunGroup> groups;
  for (const JsonValue& record : records) {
    const std::string& target = record.at("target").as_string();
    const std::string& hash = record.at("config_hash").as_string();
    RunGroup* group = nullptr;
    for (RunGroup& g : groups) {
      if (g.target == target && g.config_hash == hash) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back(RunGroup{target, hash, 0, {}});
      group = &groups.back();
    }
    ++group->runs;
    for (const JsonValue& m : record.at("metrics").as_array()) {
      const std::string& name = m.at("name").as_string();
      const std::string& unit = m.at("unit").as_string();
      find_or_add_metric(*group, name, unit)
          ->values.push_back(m.at("value").as_number());
      if (const JsonValue* pct = m.find("percentiles");
          pct != nullptr && pct->is_object()) {
        for (const auto& [key, value] : pct->members()) {
          find_or_add_metric(*group, name + "." + key, unit)
              ->values.push_back(value.as_number());
        }
      }
    }
    // host.* metrics live in the record's host half (excluded from the
    // deterministic line), but trend is exactly the tool that should see
    // them — host.progress.events_per_sec.* across commits is the
    // throughput trajectory. They stay host-named, so the regression and
    // drift scans below skip them.
    if (const JsonValue* host = record.find("host");
        host != nullptr && host->is_object()) {
      if (const JsonValue* metrics = host->find("metrics");
          metrics != nullptr && metrics->is_array()) {
        for (const JsonValue& m : metrics->as_array()) {
          find_or_add_metric(*group, m.at("name").as_string(),
                             m.at("unit").as_string())
              ->values.push_back(m.at("value").as_number());
        }
      }
    }
  }
  return groups;
}

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  const double upper = values[mid];
  if (values.size() % 2 == 1) return upper;
  const double lower =
      *std::max_element(values.begin(), values.begin() + mid);
  return (lower + upper) / 2.0;
}

double mad(const std::vector<double>& values, double center) {
  std::vector<double> dev;
  dev.reserve(values.size());
  for (const double v : values) dev.push_back(std::abs(v - center));
  return median(std::move(dev));
}

std::string sparkline(const std::vector<double>& values,
                      std::size_t max_width) {
  if (values.empty() || max_width == 0) return {};
  const std::size_t start =
      values.size() > max_width ? values.size() - max_width : 0;
  double lo = values[start];
  double hi = values[start];
  for (std::size_t i = start; i < values.size(); ++i) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  std::string out;
  out.reserve(values.size() - start);
  for (std::size_t i = start; i < values.size(); ++i) {
    std::size_t level = kRampLevels / 2;  // flat line for constant series
    if (hi > lo) {
      level = static_cast<std::size_t>((values[i] - lo) / (hi - lo) *
                                       static_cast<double>(kRampLevels - 1) +
                                       0.5);
      level = std::min(level, kRampLevels - 1);
    }
    out += kRamp[level];
  }
  return out;
}

std::vector<Regression> find_regressions(const std::vector<RunGroup>& groups,
                                         const DiffPolicy& policy) {
  std::vector<Regression> out;
  for (const RunGroup& group : groups) {
    if (group.runs < 2) continue;
    for (const MetricSeries& m : group.metrics) {
      if (m.values.size() < 2) continue;
      // Host telemetry is tracked, never judged: wall-clock rates move
      // with the machine, and flagging them would train people to
      // ignore the gate. The hard skip backs up the tolerance rules.
      if (m.name.rfind("host.", 0) == 0) continue;
      const MetricTolerance& tol = policy.lookup(m.name);
      if (tol.ignore) continue;
      const double current = m.values.back();
      const double baseline = median(std::vector<double>(
          m.values.begin(), m.values.end() - 1));
      const double abs_delta = std::abs(current - baseline);
      if (abs_delta <= std::max(tol.abs, tol.rel * std::abs(baseline))) {
        continue;
      }
      Regression r;
      r.target = group.target;
      r.config_hash = group.config_hash;
      r.metric = m.name;
      r.baseline = baseline;
      r.current = current;
      r.rel_delta = abs_delta / std::max(std::abs(baseline), DBL_MIN);
      r.tolerance = tol;
      out.push_back(std::move(r));
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Regression& a, const Regression& b) {
                     return a.rel_delta > b.rel_delta;
                   });
  return out;
}

std::vector<Drift> find_drift(const std::vector<RunGroup>& groups,
                              double min_score, std::size_t min_segment) {
  std::vector<Drift> out;
  if (min_segment == 0) min_segment = 1;
  for (const RunGroup& group : groups) {
    for (const MetricSeries& m : group.metrics) {
      const std::size_t n = m.values.size();
      if (n < 2 * min_segment) continue;
      if (m.name.rfind("host.", 0) == 0) continue;  // tracked, not judged
      Drift best;
      for (std::size_t split = min_segment; split + min_segment <= n;
           ++split) {
        const double med_before = median(std::vector<double>(
            m.values.begin(), m.values.begin() + split));
        const double med_after = median(std::vector<double>(
            m.values.begin() + split, m.values.end()));
        const double spread =
            pooled_segment_mad(m.values, split, med_before, med_after);
        // Relative floor: an exactly-constant history has zero MAD, and
        // any step on it must score as a clean detection, not divide by
        // zero.
        const double scale = std::max(
            spread, 1e-12 + 1e-9 * std::max(std::abs(med_before),
                                            std::abs(med_after)));
        const double score = std::abs(med_after - med_before) / scale;
        if (score > best.score) {
          best.split = split;
          best.before_median = med_before;
          best.after_median = med_after;
          best.score = score;
        }
      }
      if (best.score > min_score) {
        best.target = group.target;
        best.config_hash = group.config_hash;
        best.metric = m.name;
        out.push_back(std::move(best));
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Drift& a, const Drift& b) {
                     return a.score > b.score;
                   });
  return out;
}

std::string trend_openmetrics_text(const std::vector<RunGroup>& groups) {
  std::ostringstream os;
  os << "# TYPE hpcos_trend gauge\n";
  for (const RunGroup& group : groups) {
    os << "hpcos_trend_runs{target=\"" << escape_label(group.target)
       << "\",config=\"" << escape_label(group.config_hash) << "\"} "
       << group.runs << '\n';
    for (const MetricSeries& m : group.metrics) {
      if (m.values.empty()) continue;
      const std::string labels = "target=\"" + escape_label(group.target) +
                                 "\",config=\"" +
                                 escape_label(group.config_hash) +
                                 "\",metric=\"" + escape_label(m.name) +
                                 "\"";
      os << "hpcos_trend{" << labels << ",stat=\"last\"} "
         << json_format_number(m.values.back()) << '\n';
      os << "hpcos_trend{" << labels << ",stat=\"median\"} "
         << json_format_number(median(m.values)) << '\n';
    }
  }
  os << "# EOF\n";
  return os.str();
}

}  // namespace hpcos::obs::trend
