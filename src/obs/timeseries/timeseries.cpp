#include "obs/timeseries/timeseries.h"

#include <algorithm>

#include "common/check.h"
#include "obs/prof/mem.h"
#include "sim/simulator.h"

namespace hpcos::obs::ts {

void SeriesBucket::combine(const SeriesBucket& other) {
  if (other.count == 0) return;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  sum += other.sum;
  count += other.count;
}

TimeSeries::TimeSeries(SimTime resolution, std::size_t capacity)
    : resolution_(resolution), capacity_(capacity) {
  HPCOS_CHECK_MSG(resolution > SimTime::zero(),
                  "series resolution must be positive");
  HPCOS_CHECK_MSG(capacity >= 2, "series capacity must be at least 2");
  buckets_.resize(capacity_);
  prof::memory_counter("timeseries.buckets")
      ->add(capacity_ * sizeof(SeriesBucket));
}

void TimeSeries::record_n(SimTime t, double value, std::uint64_t weight) {
  HPCOS_CHECK_MSG(capacity_ > 0, "recording into a default-constructed series");
  HPCOS_CHECK_MSG(!t.is_negative(), "series sample before t = 0");
  if (weight == 0) return;
  auto index = static_cast<std::size_t>(t.count_ns() / resolution_.count_ns());
  while (index >= capacity_) {
    coarsen();
    index = static_cast<std::size_t>(t.count_ns() / resolution_.count_ns());
  }
  SeriesBucket& b = buckets_[index];
  b.min = std::min(b.min, value);
  b.max = std::max(b.max, value);
  b.sum += value * static_cast<double>(weight);
  b.count += weight;
  used_ = std::max(used_, index + 1);
}

void TimeSeries::coarsen() {
  HPCOS_CHECK_MSG(capacity_ > 0, "coarsening a default-constructed series");
  const std::size_t pairs = (used_ + 1) / 2;
  for (std::size_t i = 0; i < pairs; ++i) {
    SeriesBucket merged = buckets_[2 * i];
    if (2 * i + 1 < used_) merged.combine(buckets_[2 * i + 1]);
    buckets_[i] = merged;
  }
  for (std::size_t i = pairs; i < used_; ++i) buckets_[i] = SeriesBucket{};
  used_ = pairs;
  resolution_ = resolution_ * 2;
  ++coarsens_;
}

void TimeSeries::merge(const TimeSeries& other) {
  HPCOS_CHECK_MSG(capacity_ > 0 && other.capacity_ > 0,
                  "merging a default-constructed series");
  HPCOS_CHECK_MSG(capacity_ == other.capacity_,
                  "merging series with different capacities");
  // Align resolutions: coarsen the finer side. Both sides started from the
  // same base resolution upstream, so the ratio is a power of two.
  while (resolution_ < other.resolution_) coarsen();
  const TimeSeries* src = &other;
  TimeSeries aligned;
  if (resolution_ > other.resolution_) {
    aligned = other;
    while (aligned.resolution_ < resolution_) aligned.coarsen();
    src = &aligned;
  }
  HPCOS_CHECK_MSG(resolution_ == src->resolution_,
                  "series resolutions are not power-of-two related");
  for (std::size_t i = 0; i < src->used_; ++i) {
    buckets_[i].combine(src->buckets_[i]);
  }
  used_ = std::max(used_, src->used_);
  coarsens_ = std::max(coarsens_, src->coarsens_);
}

double TimeSeries::total_sum() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < used_; ++i) sum += buckets_[i].sum;
  return sum;
}

std::uint64_t TimeSeries::total_count() const {
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < used_; ++i) count += buckets_[i].count;
  return count;
}

TimeSeries* SeriesSet::series(const std::string& name, SimTime resolution,
                              std::size_t capacity) {
  for (auto& e : entries_) {
    if (e.name == name) return e.series.get();
  }
  entries_.push_back(
      {name, std::make_unique<TimeSeries>(resolution, capacity)});
  return entries_.back().series.get();
}

const TimeSeries* SeriesSet::find(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return e.series.get();
  }
  return nullptr;
}

std::vector<std::pair<std::string, const TimeSeries*>> SeriesSet::sorted()
    const {
  std::vector<std::pair<std::string, const TimeSeries*>> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.emplace_back(e.name, e.series.get());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

NodeTimeGrid::NodeTimeGrid(std::int64_t nodes, SimTime duration,
                           std::size_t rows, std::size_t cols)
    : nodes_(nodes), duration_(duration), rows_(rows), cols_(cols) {
  HPCOS_CHECK(nodes >= 1 && rows >= 1 && cols >= 1);
  HPCOS_CHECK_MSG(duration > SimTime::zero(),
                  "grid duration must be positive");
  rows_ = std::min(rows_, static_cast<std::size_t>(nodes));
  cells_.assign(rows_ * cols_, 0.0);
}

void NodeTimeGrid::add(std::int64_t node, SimTime t, double value) {
  HPCOS_CHECK_MSG(!cells_.empty(), "adding to an empty grid");
  HPCOS_CHECK(node >= 0 && node < nodes_);
  const auto row = static_cast<std::size_t>(
      node * static_cast<std::int64_t>(rows_) / nodes_);
  auto col = static_cast<std::size_t>(
      (t.count_ns() * static_cast<std::int64_t>(cols_)) /
      duration_.count_ns());
  col = std::min(col, cols_ - 1);
  cells_[std::min(row, rows_ - 1) * cols_ + col] += value;
}

void NodeTimeGrid::merge(const NodeTimeGrid& other) {
  if (other.cells_.empty()) return;
  if (cells_.empty()) {
    *this = other;
    return;
  }
  HPCOS_CHECK_MSG(rows_ == other.rows_ && cols_ == other.cols_,
                  "merging grids with different shapes");
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i] += other.cells_[i];
  }
}

double NodeTimeGrid::max_cell() const {
  double m = 0.0;
  for (double c : cells_) m = std::max(m, c);
  return m;
}

double NodeTimeGrid::total() const {
  double t = 0.0;
  for (double c : cells_) t += c;
  return t;
}

std::int64_t NodeTimeGrid::row_first_node(std::size_t row) const {
  // Inverse of the forward binning: smallest node with
  // node * rows / nodes == row.
  const auto r = static_cast<std::int64_t>(row);
  return (r * nodes_ + static_cast<std::int64_t>(rows_) - 1) /
         static_cast<std::int64_t>(rows_);
}

RegistrySampler::RegistrySampler(const Registry& registry, SeriesSet* out,
                                 SimTime period, std::size_t capacity,
                                 std::string prefix)
    : registry_(registry),
      out_(out),
      period_(period),
      capacity_(capacity),
      prefix_(std::move(prefix)) {
  HPCOS_CHECK(out != nullptr);
  HPCOS_CHECK_MSG(period > SimTime::zero(),
                  "sampler period must be positive");
}

void RegistrySampler::poll(SimTime now) {
  if (have_last_ && now < last_ + period_) return;
  Snapshot snap = registry_.snapshot();
  if (have_last_) {
    const Snapshot delta = Snapshot::delta(snap, last_snapshot_);
    for (const auto& c : delta.counters) {
      out_->series(prefix_ + c.name, period_, capacity_)
          ->record(now, static_cast<double>(c.value));
    }
    ++samples_;
  }
  last_ = now;
  last_snapshot_ = std::move(snap);
  have_last_ = true;
}

void RegistrySampler::schedule(sim::Simulator& sim, SimTime until) {
  poll(sim.now());
  if (sim.now() + period_ > until) return;
  sim.schedule_after(
      period_, [this, &sim, until] { schedule(sim, until); }, "obs.sampler");
}

}  // namespace hpcos::obs::ts
