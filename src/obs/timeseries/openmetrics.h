// OpenMetrics-style text exposition of a Registry (+ optional SeriesSet).
//
// The paper's measurement stack ultimately feeds dashboards; the simulated
// stack mirrors that with a scrape-format exporter. The format is the
// OpenMetrics subset that matters for round-tripping:
//
//   # TYPE hpcos_counter counter
//   hpcos_counter_total{name="ikc.to_host.posted"} 42
//   # TYPE hpcos_histogram summary
//   hpcos_histogram_count{name="offload.rpc_us"} 1024
//   hpcos_histogram{name="offload.rpc_us",quantile="0.5"} 3.2
//   # TYPE hpcos_series gauge
//   hpcos_series{name="bsp.compute_us",stat="sum"} 8.1e6
//   # EOF
//
// Raw dotted counter names are preserved verbatim in the `name` label
// (never mangled into the metric name), so parse_openmetrics can recover
// exactly the names `obs_report --json` and the BenchReport emit — the
// agreement the round-trip test in tests/test_timeseries.cpp pins.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/bench_report.h"
#include "obs/registry.h"
#include "obs/timeseries/timeseries.h"

namespace hpcos::obs::ts {

// Build the exposition text. Counters print as exact integers; histogram
// entries as a summary (count + p50/p99/max); each series contributes
// sum/count/resolution_us gauges (bucket-level data goes through the
// BenchReport JSON dump instead — scrape output stays O(metrics)).
std::string openmetrics_text(const Registry& registry,
                             const SeriesSet* series = nullptr);

// One parsed sample line: `metric{k="v",...} value`.
struct OpenMetricsSample {
  std::string metric;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;

  // Label value by key; empty string when absent.
  std::string label(const std::string& key) const;
};

// Strict parser for the exposition subset above. Throws std::runtime_error
// (with the offending line) on malformed input or a missing `# EOF`
// terminator.
std::vector<OpenMetricsSample> parse_openmetrics(const std::string& text);

// Fold every Registry counter into a BenchReport as
// `<prefix>.<counter name>` (unit "count"). Counters are integers, so the
// JSON round trip is exact — the other half of the naming round-trip test.
void add_registry_metrics(BenchReport& report, const Registry& registry,
                          const std::string& prefix = "counter");

}  // namespace hpcos::obs::ts
