#include "obs/timeseries/openmetrics.h"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "common/sim_time.h"

namespace hpcos::obs::ts {

namespace {

// Label-value escaping per the exposition format: backslash, quote,
// newline.
std::string escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void emit_sample(std::ostringstream& os, const std::string& metric,
                 std::initializer_list<std::pair<const char*, std::string>>
                     labels,
                 const std::string& value) {
  os << metric << '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) os << ',';
    first = false;
    os << k << "=\"" << escape_label(v) << '"';
  }
  os << "} " << value << '\n';
}

std::string fmt_double(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

std::string openmetrics_text(const Registry& registry,
                             const SeriesSet* series) {
  const Snapshot snap = registry.snapshot();
  std::ostringstream os;
  if (!snap.counters.empty()) {
    os << "# TYPE hpcos_counter counter\n";
    for (const auto& c : snap.counters) {
      emit_sample(os, "hpcos_counter_total", {{"name", c.name}},
                  std::to_string(c.value));
    }
  }
  if (!snap.histograms.empty()) {
    os << "# TYPE hpcos_histogram summary\n";
    for (const auto& h : snap.histograms) {
      emit_sample(os, "hpcos_histogram_count", {{"name", h.name}},
                  std::to_string(h.count));
      emit_sample(os, "hpcos_histogram",
                  {{"name", h.name}, {"quantile", std::string("0.5")}},
                  fmt_double(h.p50));
      emit_sample(os, "hpcos_histogram",
                  {{"name", h.name}, {"quantile", std::string("0.99")}},
                  fmt_double(h.p99));
      emit_sample(os, "hpcos_histogram_max", {{"name", h.name}},
                  fmt_double(h.max));
    }
  }
  if (series != nullptr && series->size() > 0) {
    os << "# TYPE hpcos_series gauge\n";
    for (const auto& [name, s] : series->sorted()) {
      emit_sample(os, "hpcos_series",
                  {{"name", name}, {"stat", std::string("sum")}},
                  fmt_double(s->total_sum()));
      emit_sample(os, "hpcos_series",
                  {{"name", name}, {"stat", std::string("count")}},
                  std::to_string(s->total_count()));
      emit_sample(
          os, "hpcos_series",
          {{"name", name}, {"stat", std::string("resolution_us")}},
          fmt_double(static_cast<double>(s->resolution().count_ns()) / 1e3));
    }
  }
  os << "# EOF\n";
  return os.str();
}

std::string OpenMetricsSample::label(const std::string& key) const {
  for (const auto& [k, v] : labels) {
    if (k == key) return v;
  }
  return {};
}

namespace {

[[noreturn]] void parse_fail(const std::string& why, const std::string& line) {
  throw std::runtime_error("openmetrics parse error: " + why + " in line: " +
                           line);
}

OpenMetricsSample parse_line(const std::string& line) {
  OpenMetricsSample sample;
  std::size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  if (i == 0 || i == line.size()) parse_fail("missing metric name", line);
  sample.metric = line.substr(0, i);
  if (line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      const std::size_t key_start = i;
      while (i < line.size() && line[i] != '=') ++i;
      if (i >= line.size()) parse_fail("unterminated label key", line);
      std::string key = line.substr(key_start, i - key_start);
      ++i;  // '='
      if (i >= line.size() || line[i] != '"') {
        parse_fail("label value is not quoted", line);
      }
      ++i;  // opening quote
      std::string value;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\' && i + 1 < line.size()) {
          ++i;
          switch (line[i]) {
            case 'n': value += '\n'; break;
            case '\\': value += '\\'; break;
            case '"': value += '"'; break;
            default: parse_fail("bad escape in label value", line);
          }
        } else {
          value += line[i];
        }
        ++i;
      }
      if (i >= line.size()) parse_fail("unterminated label value", line);
      ++i;  // closing quote
      sample.labels.emplace_back(std::move(key), std::move(value));
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (i >= line.size() || line[i] != '}') {
      parse_fail("unterminated label set", line);
    }
    ++i;  // '}'
  }
  if (i >= line.size() || line[i] != ' ') {
    parse_fail("missing value separator", line);
  }
  ++i;
  const std::string value_text = line.substr(i);
  char* end = nullptr;
  sample.value = std::strtod(value_text.c_str(), &end);
  if (end == value_text.c_str() || *end != '\0') {
    parse_fail("bad sample value", line);
  }
  return sample;
}

}  // namespace

std::vector<OpenMetricsSample> parse_openmetrics(const std::string& text) {
  std::vector<OpenMetricsSample> samples;
  std::istringstream in(text);
  std::string line;
  bool saw_eof = false;
  while (std::getline(in, line)) {
    if (saw_eof) parse_fail("content after # EOF", line);
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line == "# EOF") saw_eof = true;
      continue;  // TYPE/HELP/EOF comment lines
    }
    samples.push_back(parse_line(line));
  }
  if (!saw_eof) {
    throw std::runtime_error(
        "openmetrics parse error: missing # EOF terminator");
  }
  return samples;
}

void add_registry_metrics(BenchReport& report, const Registry& registry,
                          const std::string& prefix) {
  const Snapshot snap = registry.snapshot();
  for (const auto& c : snap.counters) {
    report.add_metric(prefix + "." + c.name, "count",
                      static_cast<double>(c.value));
  }
}

}  // namespace hpcos::obs::ts
