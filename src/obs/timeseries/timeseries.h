// Bounded-memory streaming time series on the simulated clock.
//
// The paper's signature plots are timelines, not totals: Figure 3 shows
// per-countermeasure noise over a run on one node, Figure 4 profiles OS
// noise across all 158,976 Fugaku nodes. The cumulative Registry and the
// span traces can't answer "what did metric X look like *over* the run"
// without replaying a full trace, so this module adds the streaming view:
//
//  * TimeSeries — a ring of `capacity` buckets over virtual time starting
//    at t = 0, each keeping min/max/sum/count. When a sample lands beyond
//    the covered window the series coarsens 2x (adjacent bucket pairs
//    merge, the resolution doubles), so memory is bounded regardless of
//    run length. All state is plain min/max/sum/count, so shard-order
//    merges follow the repo's determinism discipline (bit-identical for
//    any host thread count).
//  * SeriesSet — a Registry-style find-or-create collection of named
//    series with deterministic (sorted) enumeration for exporters.
//  * NodeTimeGrid — the Figure 4 analogue: a fixed rows x cols
//    node-bin x time-bin accumulation grid, merged elementwise in shard
//    order.
//  * RegistrySampler — periodic Registry snapshot deltas turned into
//    per-counter series ("what rate did linux.interrupt_ns run at during
//    each window"), drivable manually (poll) or off a DES simulator
//    (schedule).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "obs/registry.h"

namespace hpcos::sim {
class Simulator;
}  // namespace hpcos::sim

namespace hpcos::obs::ts {

struct SeriesBucket {
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  std::uint64_t count = 0;

  bool empty() const { return count == 0; }
  double mean() const {
    return count ? sum / static_cast<double>(count) : 0.0;
  }
  void combine(const SeriesBucket& other);
};

class TimeSeries {
 public:
  // Default-constructed series are empty placeholders (capacity 0); every
  // usable series needs a positive resolution and capacity >= 2 (2x
  // coarsening needs at least one pair).
  TimeSeries() = default;
  TimeSeries(SimTime resolution, std::size_t capacity);

  void record(SimTime t, double value) { record_n(t, value, 1); }
  // Weighted sample: `weight` occurrences of `value` at time t (how the
  // campaign's bulk-iteration ocean enters without materializing).
  void record_n(SimTime t, double value, std::uint64_t weight);

  // Merge adjacent bucket pairs and double the resolution. Exposed for
  // tests; record_n applies it automatically on overflow.
  void coarsen();

  // Merge another series sampled on the same base resolution (the finer
  // side is coarsened until the resolutions match — they must be related
  // by a power of two). Bucket combination is min/max/sum/count, merged
  // in call order (shard order upstream).
  void merge(const TimeSeries& other);

  SimTime resolution() const { return resolution_; }
  std::size_t capacity() const { return capacity_; }
  // Buckets in use; never exceeds capacity() (the bounded-memory
  // invariant the tests pin).
  std::size_t bucket_count() const { return used_; }
  std::uint64_t coarsen_count() const { return coarsens_; }

  const SeriesBucket& bucket(std::size_t i) const { return buckets_.at(i); }
  SimTime bucket_start(std::size_t i) const {
    return resolution_ * static_cast<std::int64_t>(i);
  }
  // End of the covered window (capacity * resolution).
  SimTime window_end() const {
    return resolution_ * static_cast<std::int64_t>(capacity_);
  }

  double total_sum() const;
  std::uint64_t total_count() const;

 private:
  SimTime resolution_;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  std::uint64_t coarsens_ = 0;
  std::vector<SeriesBucket> buckets_;
};

// Find-or-create collection of named series; the returned pointer is
// stable for the set's lifetime (Registry discipline: single writer, no
// hot-path locks).
class SeriesSet {
 public:
  SeriesSet() = default;
  SeriesSet(const SeriesSet&) = delete;
  SeriesSet& operator=(const SeriesSet&) = delete;

  TimeSeries* series(const std::string& name, SimTime resolution,
                     std::size_t capacity);
  const TimeSeries* find(const std::string& name) const;
  std::size_t size() const { return entries_.size(); }

  // Name-sorted view for exporters (deterministic enumeration).
  std::vector<std::pair<std::string, const TimeSeries*>> sorted() const;

 private:
  struct Entry {
    std::string name;
    std::unique_ptr<TimeSeries> series;
  };
  std::vector<Entry> entries_;
};

// Fixed-size node x time accumulation grid (the Figure 4 full-machine
// heatmap, downsampled at ingest so memory is rows * cols regardless of
// node count or run length).
class NodeTimeGrid {
 public:
  NodeTimeGrid() = default;
  NodeTimeGrid(std::int64_t nodes, SimTime duration, std::size_t rows,
               std::size_t cols);

  bool empty() const { return cells_.empty(); }
  void add(std::int64_t node, SimTime t, double value);
  // Elementwise add; shapes must match. Merged in shard order upstream.
  void merge(const NodeTimeGrid& other);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::int64_t nodes() const { return nodes_; }
  SimTime duration() const { return duration_; }
  double cell(std::size_t row, std::size_t col) const {
    return cells_.at(row * cols_ + col);
  }
  double max_cell() const;
  double total() const;
  // First node id binned into `row` (rows partition [0, nodes)).
  std::int64_t row_first_node(std::size_t row) const;

 private:
  std::int64_t nodes_ = 0;
  SimTime duration_;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> cells_;
};

// Periodic Registry snapshot deltas -> per-counter series. Counter names
// are prefixed with `prefix` (e.g. "linux-node."); each sample records
// the counter's increase since the previous sample at the poll time.
class RegistrySampler {
 public:
  RegistrySampler(const Registry& registry, SeriesSet* out, SimTime period,
                  std::size_t capacity = 256, std::string prefix = "");

  // Take a sample when at least one period elapsed since the last one
  // (no-op otherwise, so callers can poll opportunistically from a
  // driver loop).
  void poll(SimTime now);

  // Self-rescheduling periodic sampling on a DES simulator until `until`
  // (inclusive). The sampler must outlive the simulator's run.
  void schedule(sim::Simulator& sim, SimTime until);

  std::uint64_t samples() const { return samples_; }

 private:
  const Registry& registry_;
  SeriesSet* out_;
  SimTime period_;
  std::size_t capacity_;
  std::string prefix_;
  bool have_last_ = false;
  SimTime last_;
  Snapshot last_snapshot_;
  std::uint64_t samples_ = 0;
};

}  // namespace hpcos::obs::ts
