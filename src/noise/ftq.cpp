#include "noise/ftq.h"

#include <algorithm>

#include "common/check.h"

namespace hpcos::noise {

FtqThread::FtqThread(FtqConfig config) : config_(config) {
  HPCOS_CHECK(config_.window > SimTime::zero());
  HPCOS_CHECK(config_.unit_work > SimTime::zero());
  HPCOS_CHECK(config_.unit_work <= config_.window);
  HPCOS_CHECK(config_.windows > 0);
  trace_.work_counts.reserve(config_.windows);
}

void FtqThread::step(os::ThreadContext& ctx) {
  if (!started_) {
    started_ = true;
    trace_.core = ctx.core();
    window_end_ = ctx.now() + config_.window;
  } else {
    // A unit quantum just completed. Close every window boundary it
    // crossed (a long noise event can swallow whole windows — those
    // windows record depressed / zero counts, as real FTQ does).
    ++count_;
    while (ctx.now() >= window_end_) {
      trace_.work_counts.push_back(count_);
      count_ = 0;
      window_end_ += config_.window;
      if (trace_.work_counts.size() >=
          static_cast<std::size_t>(config_.windows)) {
        finished_ = true;
        ctx.exit();
        return;
      }
    }
  }
  ctx.compute(config_.unit_work);
}

std::vector<FtqTrace> run_ftq(os::NodeKernel& kernel, const hw::CpuSet& cores,
                              FtqConfig config) {
  std::vector<const FtqThread*> bodies;
  for (hw::CoreId core : cores.to_vector()) {
    auto body = std::make_unique<FtqThread>(config);
    bodies.push_back(body.get());
    os::SpawnAttrs attrs;
    attrs.name = "ftq-" + std::to_string(core);
    attrs.affinity = hw::CpuSet::of(
        static_cast<std::size_t>(kernel.topology().logical_cores()), {core});
    kernel.spawn(std::move(body), std::move(attrs));
  }
  auto all_done = [&] {
    return std::all_of(bodies.begin(), bodies.end(),
                       [](const FtqThread* b) { return b->finished(); });
  };
  while (!all_done()) {
    const bool progressed = kernel.simulator().step();
    HPCOS_CHECK_MSG(progressed, "FTQ deadlock: event queue drained early");
  }
  std::vector<FtqTrace> out;
  out.reserve(bodies.size());
  for (const FtqThread* b : bodies) out.push_back(b->trace());
  return out;
}

double ftq_work_loss(const std::vector<FtqTrace>& traces) {
  std::uint64_t best = 0;
  std::uint64_t total = 0;
  std::uint64_t windows = 0;
  for (const auto& t : traces) {
    for (const std::uint64_t c : t.work_counts) {
      best = std::max(best, c);
      total += c;
      ++windows;
    }
  }
  if (windows == 0 || best == 0) return 0.0;
  const double ideal = static_cast<double>(best) *
                       static_cast<double>(windows);
  return 1.0 - static_cast<double>(total) / ideal;
}

}  // namespace hpcos::noise
