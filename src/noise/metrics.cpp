#include "noise/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hpcos::noise {
namespace {

void accumulate(std::span<const SimTime> ts, SimTime& t_min, SimTime& t_max) {
  for (SimTime t : ts) {
    t_min = std::min(t_min, t);
    t_max = std::max(t_max, t);
  }
}

NoiseStats finish_stats(std::span<const std::span<const SimTime>> series) {
  NoiseStats s;
  s.t_min = SimTime::max();
  s.t_max = SimTime::zero();
  for (auto ts : series) accumulate(ts, s.t_min, s.t_max);
  if (s.t_min == SimTime::max()) {
    return NoiseStats{};  // no samples
  }
  s.max_noise_length = s.t_max - s.t_min;
  const double tmin_ns = static_cast<double>(s.t_min.count_ns());
  double sum = 0.0;
  std::uint64_t n = 0;
  for (auto ts : series) {
    for (SimTime t : ts) {
      if (tmin_ns > 0.0) {
        sum += static_cast<double>((t - s.t_min).count_ns()) / tmin_ns;
      }
      ++n;
    }
  }
  // T_min == 0 happens on legitimate traces (a zero-work FWQ quantum in
  // tests); Eq. 2 normalizes by T_min, so the rate is undefined there and
  // we report zero rather than dividing by zero or aborting.
  s.noise_rate = n > 0 && tmin_ns > 0.0 ? sum / static_cast<double>(n) : 0.0;
  s.samples = n;
  return s;
}

}  // namespace

NoiseStats compute_noise_stats(std::span<const SimTime> iteration_times) {
  const std::span<const SimTime> one[] = {iteration_times};
  return finish_stats(one);
}

NoiseStats compute_noise_stats(const std::vector<FwqTrace>& traces) {
  std::vector<std::span<const SimTime>> series;
  series.reserve(traces.size());
  for (const auto& t : traces) series.emplace_back(t.iteration_times);
  return finish_stats(series);
}

std::vector<SimTime> noise_lengths(std::span<const SimTime> iteration_times) {
  std::vector<SimTime> out;
  if (iteration_times.empty()) return out;
  const SimTime t_min =
      *std::min_element(iteration_times.begin(), iteration_times.end());
  out.reserve(iteration_times.size());
  for (SimTime t : iteration_times) out.push_back(t - t_min);
  return out;
}

double hit_probability(SimTime sync_interval, SimTime noise_interval,
                       std::uint64_t num_threads) {
  HPCOS_CHECK(noise_interval > SimTime::zero());
  const double ratio = std::min(1.0, sync_interval.ratio(noise_interval));
  // (1 - r)^N computed in log space to survive N ~ 7.6 million.
  if (ratio >= 1.0) return 1.0;
  const double log_miss =
      static_cast<double>(num_threads) * std::log1p(-ratio);
  return 1.0 - std::exp(log_miss);
}

double bsp_noise_delay(std::span<const NoiseGroup> groups,
                       SimTime sync_interval, std::uint64_t num_threads) {
  HPCOS_CHECK(sync_interval > SimTime::zero());
  double worst = 0.0;
  for (const auto& g : groups) {
    const double p = hit_probability(sync_interval, g.interval, num_threads);
    const double delay = p * g.length.ratio(sync_interval);
    worst = std::max(worst, delay);
  }
  return worst;
}

}  // namespace hpcos::noise
