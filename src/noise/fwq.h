// Fixed Work Quanta (FWQ) benchmark (LLNL; §6.2 of the paper).
//
// FWQ performs a fixed amount of pure computation per loop iteration and
// records each iteration's wall time; any excess over the minimum is OS
// noise. The paper configures ~6.5 ms quanta (the largest value below the
// 10 ms Linux tick) and runs one FWQ thread per application core.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/sim_time.h"
#include "oskernel/kernel.h"

namespace hpcos::noise {

struct FwqConfig {
  // Work per iteration (pure compute, no memory / file I/O).
  SimTime work_quantum = SimTime::from_ms(6.5);
  std::uint64_t iterations = 1000;
};

// Per-thread iteration timings, in the order measured.
struct FwqTrace {
  hw::CoreId core = hw::kInvalidCore;
  std::vector<SimTime> iteration_times;
};

// The FWQ loop as a thread body. Timestamps come from the simulated clock,
// so every preemption, interrupt and stall the kernel imposes shows up in
// the iteration deltas exactly as it would on real hardware.
class FwqThread final : public os::ThreadBody {
 public:
  explicit FwqThread(FwqConfig config);

  void step(os::ThreadContext& ctx) override;

  bool finished() const { return finished_; }
  const FwqTrace& trace() const { return trace_; }

 private:
  FwqConfig config_;
  FwqTrace trace_;
  std::uint64_t iter_ = 0;
  SimTime iter_start_;
  bool started_ = false;
  bool finished_ = false;
};

// Convenience driver: spawn one FWQ thread pinned to each core in `cores`
// on `kernel`, run the simulation until all finish, and return the traces
// (indexed like `cores`). The caller owns the simulator clock; this runs
// it forward.
std::vector<FwqTrace> run_fwq(os::NodeKernel& kernel,
                              const hw::CpuSet& cores, FwqConfig config);

}  // namespace hpcos::noise
