#include "noise/analytic.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hpcos::noise {

SimTime DurationDist::sample(RngStream& rng) const {
  if (sigma == 0.0) return std::clamp(median, min, max);
  const double mu = std::log(static_cast<double>(median.count_ns()));
  const double v = rng.lognormal(mu, sigma);
  const auto t = SimTime::ns(static_cast<std::int64_t>(v));
  return std::clamp(t, min, max);
}

SimTime DurationDist::mean() const {
  if (sigma == 0.0) return median;
  // E[lognormal] = median * exp(sigma^2 / 2).
  return median.scaled(std::exp(sigma * sigma / 2.0));
}

double inverse_normal_cdf(double p) {
  // Acklam's rational approximation.
  HPCOS_CHECK(p > 0.0 && p < 1.0);
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

SimTime DurationDist::quantile(double q) const {
  if (sigma == 0.0) return std::clamp(median, min, max);
  const double qq = std::clamp(q, 1e-12, 1.0 - 1e-12);
  const double z = inverse_normal_cdf(qq);
  const double v =
      static_cast<double>(median.count_ns()) * std::exp(sigma * z);
  return std::clamp(SimTime::ns(static_cast<std::int64_t>(v)), min, max);
}

SimTime DurationDist::sample_max(std::uint64_t k, RngStream& rng) const {
  if (k == 0) return SimTime::zero();
  if (k <= 64) {
    SimTime worst = SimTime::zero();
    for (std::uint64_t i = 0; i < k; ++i) {
      worst = std::max(worst, sample(rng));
    }
    return worst;
  }
  // max of k iid draws: F_max^{-1}(u) = F^{-1}(u^{1/k}).
  const double u = std::clamp(rng.uniform(), 1e-12, 1.0 - 1e-12);
  const double q = std::exp(std::log(u) / static_cast<double>(k));
  return quantile(q);
}

std::string to_string(SourceKind k) {
  switch (k) {
    case SourceKind::kDaemon:
      return "daemon";
    case SourceKind::kKworker:
      return "kworker";
    case SourceKind::kBlkMq:
      return "blk-mq";
    case SourceKind::kPmuRead:
      return "pmu-read";
    case SourceKind::kTlbiStorm:
      return "tlbi-storm";
    case SourceKind::kSar:
      return "sar";
    case SourceKind::kDeviceIrq:
      return "device-irq";
    case SourceKind::kResidualTick:
      return "residual-tick";
    case SourceKind::kHardware:
      return "hardware";
  }
  return "?";
}

sim::TraceCategory trace_category(SourceKind k) {
  switch (k) {
    case SourceKind::kDaemon:
    case SourceKind::kSar:
      return sim::TraceCategory::kDaemon;
    case SourceKind::kKworker:
      return sim::TraceCategory::kKworker;
    case SourceKind::kBlkMq:
      return sim::TraceCategory::kBlkMq;
    case SourceKind::kPmuRead:
      return sim::TraceCategory::kPmuRead;
    case SourceKind::kTlbiStorm:
      return sim::TraceCategory::kTlbShootdown;
    case SourceKind::kDeviceIrq:
      return sim::TraceCategory::kIrq;
    case SourceKind::kResidualTick:
      return sim::TraceCategory::kTimerTick;
    case SourceKind::kHardware:
      return sim::TraceCategory::kUser;
  }
  return sim::TraceCategory::kUser;
}

AnalyticNodeSampler::AnalyticNodeSampler(const AnalyticNoiseProfile& profile,
                                         int app_cores, RngStream rng)
    : base_jitter_mean_(profile.base_jitter_mean),
      base_jitter_sd_(profile.base_jitter_sd),
      app_cores_(app_cores),
      rng_(rng) {
  HPCOS_CHECK(app_cores_ > 0);
  for (const auto& s : profile.sources) {
    HPCOS_CHECK_MSG(s.mean_interval > SimTime::zero(),
                    "noise source needs a positive interval");
    if (s.node_fraction >= 1.0 || rng_.bernoulli(s.node_fraction)) {
      active_.push_back(s);
    }
  }
}

SimTime AnalyticNodeSampler::per_core_interval(
    const NoiseSourceSpec& spec) const {
  switch (spec.scope) {
    case SourceScope::kPerCore:
    case SourceScope::kAllCores:
      // Every core observes each occurrence.
      return spec.mean_interval;
    case SourceScope::kPerNodeRandomCore:
      // A given core is hit 1/app_cores of the time.
      return spec.mean_interval * app_cores_;
  }
  return spec.mean_interval;
}

SimTime AnalyticNodeSampler::sample_floor_iteration(SimTime quantum) {
  double t_ns = static_cast<double>(quantum.count_ns());
  if (base_jitter_sd_ > 0.0 || base_jitter_mean_ > 0.0) {
    const double j =
        std::max(0.0, rng_.normal(base_jitter_mean_, base_jitter_sd_));
    t_ns *= 1.0 + j;
  }
  return SimTime::ns(static_cast<std::int64_t>(t_ns));
}

SimTime AnalyticNodeSampler::sample_iteration(SimTime quantum) {
  SimTime total = sample_floor_iteration(quantum);
  for (const auto& s : active_) {
    const double rate = quantum.ratio(per_core_interval(s));
    const std::uint64_t hits = rng_.poisson(rate);
    for (std::uint64_t h = 0; h < hits; ++h) {
      total += s.duration.sample(rng_);
    }
  }
  return total;
}

SimTime AnalyticNodeSampler::sample_rank_delay(SimTime sync, int threads) {
  HPCOS_CHECK(threads > 0);
  // The rank's barrier waits for its worst-hit thread. Hits land on
  // independent threads with overwhelming probability at realistic rates,
  // so the rank delay is the maximum single-hit duration (Eq. 1's logic),
  // except for kAllCores sources, which delay every thread and therefore
  // add unconditionally.
  SimTime worst = SimTime::zero();
  SimTime all_core_sum = SimTime::zero();
  for (const auto& s : active_) {
    if (s.scope == SourceScope::kAllCores) {
      const double rate = sync.ratio(s.mean_interval);
      const std::uint64_t hits = rng_.poisson(rate);
      for (std::uint64_t h = 0; h < hits; ++h) {
        all_core_sum += s.duration.sample(rng_);
      }
      continue;
    }
    // Aggregate arrival rate across the rank's threads within the window.
    const double per_thread_rate = sync.ratio(per_core_interval(s));
    const std::uint64_t hits =
        rng_.poisson(per_thread_rate * static_cast<double>(threads));
    for (std::uint64_t h = 0; h < hits; ++h) {
      worst = std::max(worst, s.duration.sample(rng_));
    }
  }
  SimTime jitter = SimTime::zero();
  if (base_jitter_sd_ > 0.0 || base_jitter_mean_ > 0.0) {
    // The slowest of `threads` draws; approximate with mean + 2 sd for
    // realistic thread counts.
    const double frac =
        std::max(0.0, base_jitter_mean_ + 2.0 * base_jitter_sd_);
    jitter = sync.scaled(frac);
  }
  return worst + all_core_sum + jitter;
}

}  // namespace hpcos::noise
