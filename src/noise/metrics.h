// Noise metrics from the paper's evaluation (§6.3).
//
//  * noise length  L_i = T_i - T_min            (per FWQ sample)
//  * max noise length = T_max - T_min           (Table 2, col 2)
//  * noise rate  = (1/n) * sum_i (T_i - T_min)/T_min      (Eq. 2, col 3)
//
// plus the analytic bulk-synchronous slowdown estimator of Eq. 1.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/sim_time.h"
#include "noise/fwq.h"

namespace hpcos::noise {

struct NoiseStats {
  SimTime t_min;
  SimTime t_max;
  SimTime max_noise_length;  // t_max - t_min
  double noise_rate = 0.0;   // Eq. 2
  std::uint64_t samples = 0;
};

// Stats over one thread's FWQ iterations.
NoiseStats compute_noise_stats(std::span<const SimTime> iteration_times);

// Stats over many traces, using the global minimum as T_min (how the paper
// aggregates multi-core / multi-node FWQ data).
NoiseStats compute_noise_stats(const std::vector<FwqTrace>& traces);

// Noise length series L_i = T_i - T_min for time-series plots (Figure 3).
std::vector<SimTime> noise_lengths(std::span<const SimTime> iteration_times);

// ---- Eq. 1: analytic delay bound for bulk-synchronous applications ----
//
//   delay = max_i ( (1 - (1 - S/I_i)^N) * L_i / S )
//
// with S the synchronization interval, N the number of threads, and group i
// having noise length L_i and occurrence interval I_i. The result is the
// expected fractional slowdown.
struct NoiseGroup {
  SimTime length;    // L_i
  SimTime interval;  // I_i
};

double bsp_noise_delay(std::span<const NoiseGroup> groups,
                       SimTime sync_interval, std::uint64_t num_threads);

// Probability that at least one of N threads is hit within one sync
// interval by a noise source of interval I: 1 - (1 - S/I)^N.
double hit_probability(SimTime sync_interval, SimTime noise_interval,
                       std::uint64_t num_threads);

}  // namespace hpcos::noise
