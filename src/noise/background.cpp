#include "noise/background.h"

#include "common/check.h"

namespace hpcos::noise {

DaemonBody::DaemonBody(SimTime mean_interval, DurationDist duration,
                       RngStream rng)
    : mean_interval_(mean_interval), duration_(duration), rng_(rng) {}

void DaemonBody::step(os::ThreadContext& ctx) {
  if (computing_) {
    computing_ = false;
    ctx.sleep_for(rng_.exponential_time(mean_interval_));
  } else {
    computing_ = true;
    ctx.compute(duration_.sample(rng_));
  }
}

BackgroundActivity::BackgroundActivity(os::NodeKernel& kernel,
                                       AnalyticNoiseProfile profile,
                                       hw::CpuSet target_cores,
                                       hw::CpuSet system_cores,
                                       os::ChipStallBus* bus, RngStream rng)
    : kernel_(kernel),
      profile_(std::move(profile)),
      target_cores_(std::move(target_cores)),
      system_cores_(std::move(system_cores)),
      bus_(bus),
      rng_(rng),
      target_list_(target_cores_.to_vector()) {}

void BackgroundActivity::start() {
  HPCOS_CHECK_MSG(!started_, "BackgroundActivity already started");
  started_ = true;
  std::uint64_t index = 0;
  for (const auto& spec : profile_.sources) {
    RngStream src_rng = rng_.split(index);
    ++index;
    if (spec.node_fraction < 1.0 && !src_rng.bernoulli(spec.node_fraction)) {
      continue;
    }
    ++active_sources_;
    start_source(spec, index);
  }
}

void BackgroundActivity::start_source(const NoiseSourceSpec& spec,
                                      std::uint64_t index) {
  
  if (spec.kind == SourceKind::kResidualTick) {
    return;  // realized by the kernel's tick driver, not a generator
  }

  if (spec.kind == SourceKind::kDaemon) {
    // Real threads under the scheduler; "unbound" affinity (all cores this
    // kernel owns) is what lets CFS wake them on application cores.
    const int n = std::max(1, spec.instances);
    for (int i = 0; i < n; ++i) {
      os::SpawnAttrs attrs;
      attrs.name = spec.name + "-" + std::to_string(i);
      attrs.background = true;
      auto body = std::make_unique<DaemonBody>(
          spec.mean_interval * n, spec.duration,
          rng_.split(index * 1024 + static_cast<std::uint64_t>(i)));
      kernel_.spawn(std::move(body), std::move(attrs));
    }
    return;
  }

  // Event generators.
  if (spec.scope == SourceScope::kPerCore) {
    std::uint64_t sub = 0;
    for (hw::CoreId core : target_list_) {
      arm_generator(spec, rng_.split(index * 4096 + sub), core);
      ++sub;
    }
  } else {
    arm_generator(spec, rng_.split(index * 4096 + 4095), hw::kInvalidCore);
  }
}

void BackgroundActivity::arm_generator(const NoiseSourceSpec& spec,
                                       RngStream rng, hw::CoreId fixed_core) {
  generator_rngs_.push_back(std::make_unique<RngStream>(rng));
  RngStream* r = generator_rngs_.back().get();
  // Self-rescheduling arrival process; the spec pointer stays valid because
  // it aliases into profile_, which lives as long as this object.
  const NoiseSourceSpec* s = &spec;
  auto chain = std::make_shared<std::function<void()>>();
  *chain = [this, s, r, fixed_core, chain] {
    fire(*s, *r, fixed_core);
    kernel_.simulator().schedule_after(r->exponential_time(s->mean_interval),
                                       *chain, "noise.daemon");
  };
  kernel_.simulator().schedule_after(r->exponential_time(s->mean_interval),
                                     *chain, "noise.daemon");
}

void BackgroundActivity::fire(const NoiseSourceSpec& spec,
                              RngStream& rng, hw::CoreId fixed_core) {
  switch (spec.scope) {
    case SourceScope::kPerCore:
      deliver(spec, fixed_core, spec.duration.sample(rng));
      return;
    case SourceScope::kPerNodeRandomCore: {
      if (target_list_.empty()) return;
      const hw::CoreId core =
          target_list_[rng.uniform_index(target_list_.size())];
      deliver(spec, core, spec.duration.sample(rng));
      return;
    }
    case SourceScope::kAllCores: {
      if (spec.kind == SourceKind::kTlbiStorm) {
        // One storm: every other core on the chip stalls for the sampled
        // total (flush_count x 200 ns), §4.2.2.
        const SimTime total = spec.duration.sample(rng);
        const hw::CoreId initiator = system_cores_.any()
                                         ? system_cores_.first()
                                         : hw::kInvalidCore;
        if (bus_ != nullptr) {
          bus_->broadcast_stall(initiator, total,
                                sim::TraceCategory::kTlbShootdown, spec.name);
        } else {
          kernel_.stall_all_cores_except(
              initiator, total, sim::TraceCategory::kTlbShootdown, spec.name);
        }
        return;
      }
      for (hw::CoreId core : target_list_) {
        deliver(spec, core, spec.duration.sample(rng));
      }
      return;
    }
  }
}

void BackgroundActivity::deliver(const NoiseSourceSpec& spec,
                                 hw::CoreId core, SimTime duration) {
    if (duration.is_zero()) return;
  switch (spec.kind) {
    case SourceKind::kKworker:
      kernel_.interrupt_core(core, duration, sim::TraceCategory::kKworker,
                             spec.name);
      return;
    case SourceKind::kBlkMq:
      kernel_.interrupt_core(core, duration, sim::TraceCategory::kBlkMq,
                             spec.name);
      return;
    case SourceKind::kPmuRead:
      kernel_.interrupt_core(core, duration, sim::TraceCategory::kPmuRead,
                             spec.name);
      return;
    case SourceKind::kDeviceIrq:
      kernel_.interrupt_core(core, duration, sim::TraceCategory::kIrq,
                             spec.name);
      return;
    case SourceKind::kSar:
    case SourceKind::kHardware:
      // Shared-resource contention: pure execution-time inflation, no
      // kernel instructions on the victim core.
      kernel_.stall_core(core, duration, sim::TraceCategory::kUser,
                         spec.name);
      return;
    case SourceKind::kDaemon:
    case SourceKind::kTlbiStorm:
    case SourceKind::kResidualTick:
      HPCOS_CHECK_MSG(false, "source kind handled elsewhere");
  }
}

}  // namespace hpcos::noise
