// Fixed Time Quanta (FTQ) — the FWQ sibling from the same LLNL suite.
//
// Where FWQ fixes the work and measures elapsed time, FTQ fixes the time
// window and counts how many unit work quanta complete inside it; noise
// appears as depressed counts. The paper uses FWQ, but the benchmark
// document it cites defines both, and FTQ's fixed windows make it the
// natural probe for periodic interference (a tick at a fixed phase
// depresses every k-th window).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/sim_time.h"
#include "oskernel/kernel.h"

namespace hpcos::noise {

struct FtqConfig {
  SimTime window = SimTime::from_ms(6.5);  // fixed wall-time window
  SimTime unit_work = SimTime::us(50);     // one countable quantum
  std::uint64_t windows = 200;             // windows to measure
};

struct FtqTrace {
  hw::CoreId core = hw::kInvalidCore;
  std::vector<std::uint64_t> work_counts;  // quanta completed per window

  // Maximum possible count per window (no noise).
  std::uint64_t ideal_count(const FtqConfig& cfg) const {
    return static_cast<std::uint64_t>(cfg.window.ratio(cfg.unit_work));
  }
};

class FtqThread final : public os::ThreadBody {
 public:
  explicit FtqThread(FtqConfig config);
  void step(os::ThreadContext& ctx) override;

  bool finished() const { return finished_; }
  const FtqTrace& trace() const { return trace_; }

 private:
  FtqConfig config_;
  FtqTrace trace_;
  SimTime window_end_;
  std::uint64_t count_ = 0;
  bool started_ = false;
  bool finished_ = false;
};

// Spawn one FTQ thread per core in `cores`, run to completion, return the
// traces in core order.
std::vector<FtqTrace> run_ftq(os::NodeKernel& kernel, const hw::CpuSet& cores,
                              FtqConfig config);

// Noise summary over FTQ data: fraction of work lost relative to the
// per-trace maximum observed count (the FTQ analogue of Eq. 2).
double ftq_work_loss(const std::vector<FtqTrace>& traces);

}  // namespace hpcos::noise
