#include "noise/profiles.h"

namespace hpcos::noise {
namespace {

NoiseSourceSpec spec(std::string name, SourceKind kind, SourceScope scope,
                     SimTime interval, DurationDist dur,
                     double node_fraction = 1.0) {
  NoiseSourceSpec s;
  s.name = std::move(name);
  s.kind = kind;
  s.scope = scope;
  s.mean_interval = interval;
  s.duration = dur;
  s.node_fraction = node_fraction;
  return s;
}

DurationDist dist(SimTime median, double sigma, SimTime max) {
  return DurationDist{.median = median, .sigma = sigma,
                      .min = SimTime::zero(), .max = max};
}

// Residual noise present on production Fugaku Linux even with every
// countermeasure enabled: the paper attributes it chiefly to sar (§6.3),
// plus the 1 Hz residual nohz tick and a small hardware floor.
void add_fugaku_linux_baseline(AnalyticNoiseProfile& p) {
  p.sources.push_back(spec(
      "residual-tick", SourceKind::kResidualTick, SourceScope::kPerCore,
      SimTime::sec(1), dist(SimTime::ns(700), 0.0, SimTime::ns(700))));
  p.sources.push_back(spec(
      "sar-monitor", SourceKind::kSar, SourceScope::kAllCores,
      SimTime::sec(10), dist(SimTime::us(6), 1.0, SimTime::from_us(50.4))));
  p.sources.push_back(spec(
      "hw-floor", SourceKind::kHardware, SourceScope::kPerCore,
      SimTime::sec(5), dist(SimTime::us(10), 0.6, SimTime::us(45))));
  // Population-tail sources: a small fraction of nodes occasionally run
  // residual kernel work in the ~1 ms class. Invisible on a 16-node
  // testbed (Table 2) and irrelevant to application windows, but across
  // 9,216+ nodes x 1 h of FWQ they form the Figure 4b Linux tail.
  p.sources.push_back(spec(
      "slow-node-residual", SourceKind::kKworker,
      SourceScope::kPerNodeRandomCore, SimTime::sec(600),
      dist(SimTime::us(400), 0.4, SimTime::from_ms(1.3)),
      /*node_fraction=*/0.02));
  // A tiny fraction of nodes carry a misbehaving service; decisive for
  // the full-scale (158,976-node) tail of Figure 4b.
  p.sources.push_back(spec(
      "straggler-service", SourceKind::kDaemon,
      SourceScope::kPerNodeRandomCore, SimTime::sec(20),
      dist(SimTime::from_ms(1.5), 0.4, SimTime::from_ms(3.5)),
      /*node_fraction=*/2.5e-5));
  p.base_jitter_mean = 0.0;
  p.base_jitter_sd = 2e-6;
}

}  // namespace

AnalyticNoiseProfile fugaku_linux_profile(const Countermeasures& cm) {
  AnalyticNoiseProfile p;
  p.name = "fugaku-linux";
  add_fugaku_linux_baseline(p);

  if (!cm.bind_daemons) {
    // OS daemons free to wake on application cores. The frequent small
    // activity dominates the rate; rare heavyweight service work (log
    // rotation, package scans) produces the ~20 ms worst case of Table 2.
    p.sources.push_back(spec(
        "daemon-mix", SourceKind::kDaemon, SourceScope::kPerNodeRandomCore,
        SimTime::ms(5), dist(SimTime::us(150), 1.0, SimTime::ms(10))));
    p.sources.push_back(spec(
        "daemon-heavy", SourceKind::kDaemon, SourceScope::kPerNodeRandomCore,
        SimTime::sec(30), dist(SimTime::ms(6), 0.8, SimTime::from_ms(20.3))));
  }
  if (!cm.bind_kworkers) {
    p.sources.push_back(spec(
        "kworker-unbound", SourceKind::kKworker,
        SourceScope::kPerNodeRandomCore, SimTime::sec(4),
        dist(SimTime::us(150), 0.35, SimTime::us(266))));
  }
  if (!cm.bind_blkmq) {
    p.sources.push_back(spec(
        "blk-mq-worker", SourceKind::kBlkMq,
        SourceScope::kPerNodeRandomCore, SimTime::sec(6),
        dist(SimTime::us(220), 0.35, SimTime::us(388))));
  }
  if (!cm.stop_pmu_reads) {
    // TCS collects PMU counters with cross-core IPIs: every core pays.
    p.sources.push_back(spec(
        "tcs-pmu-read", SourceKind::kPmuRead, SourceScope::kAllCores,
        SimTime::sec(12), dist(SimTime::us(45), 0.5, SimTime::us(103))));
  }
  if (!cm.suppress_global_tlbi) {
    // Single-threaded system processes releasing memory broadcast TLBIs;
    // every application core stalls ~200 ns per flush (§4.2.2).
    p.sources.push_back(spec(
        "tlbi-broadcast", SourceKind::kTlbiStorm, SourceScope::kAllCores,
        SimTime::sec(90), dist(SimTime::us(75), 0.15, SimTime::from_us(90.2))));
  }
  return p;
}

AnalyticNoiseProfile strip_population_tails(AnalyticNoiseProfile profile) {
  std::erase_if(profile.sources, [](const NoiseSourceSpec& s) {
    return s.node_fraction < 1.0;
  });
  return profile;
}

AnalyticNoiseProfile fugaku_mckernel_profile() {
  AnalyticNoiseProfile p;
  p.name = "fugaku-mckernel";
  // The LWK runs no background activity whatsoever; what remains is the
  // hardware floor (shared HBM/L2 traffic from the Linux partition).
  p.sources.push_back(spec(
      "hw-floor", SourceKind::kHardware, SourceScope::kPerCore,
      SimTime::sec(10), dist(SimTime::us(6), 0.5, SimTime::us(30))));
  p.sources.push_back(spec(
      "hw-rare", SourceKind::kHardware, SourceScope::kPerCore,
      SimTime::sec(300), dist(SimTime::us(25), 0.5, SimTime::us(60))));
  // A few nodes show occasional sub-ms hardware excursions; these keep
  // the Figure 4b McKernel curve near (slightly below) 24-rack Linux.
  p.sources.push_back(spec(
      "hw-tail", SourceKind::kHardware, SourceScope::kPerNodeRandomCore,
      SimTime::sec(600), dist(SimTime::us(150), 0.4, SimTime::us(600)),
      /*node_fraction=*/0.02));
  p.base_jitter_mean = 0.0;
  p.base_jitter_sd = 1e-6;
  return p;
}

AnalyticNoiseProfile ofp_linux_profile() {
  AnalyticNoiseProfile p;
  p.name = "ofp-linux";
  // CentOS 7.3, nohz_full on application cores but *no* cgroup isolation:
  // daemons and kworkers wander onto application cores, device IRQs are
  // balanced across the whole chip, and THP background work (khugepaged,
  // compaction) stalls applications. KNL cores are slow, so each hit costs
  // ~3x its A64FX equivalent — hence the 24 ms worst case in Figure 4a.
  p.sources.push_back(spec(
      "residual-tick", SourceKind::kResidualTick, SourceScope::kPerCore,
      SimTime::sec(1), dist(SimTime::us(2), 0.0, SimTime::us(2))));
  p.sources.push_back(spec(
      "daemon-mix", SourceKind::kDaemon, SourceScope::kPerNodeRandomCore,
      SimTime::ms(5), dist(SimTime::us(150), 0.5, SimTime::ms(1))));
  p.sources.push_back(spec(
      "daemon-heavy", SourceKind::kDaemon, SourceScope::kPerNodeRandomCore,
      SimTime::sec(90), dist(SimTime::ms(4), 0.6, SimTime::from_ms(17.5))));
  p.sources.push_back(spec(
      "kworker-unbound", SourceKind::kKworker,
      SourceScope::kPerNodeRandomCore, SimTime::sec(1),
      dist(SimTime::us(120), 0.8, SimTime::ms(2))));
  p.sources.push_back(spec(
      "device-irq", SourceKind::kDeviceIrq, SourceScope::kPerCore,
      SimTime::sec(2), dist(SimTime::us(15), 0.8, SimTime::us(200))));
  p.sources.push_back(spec(
      "thp-khugepaged", SourceKind::kKworker, SourceScope::kPerCore,
      SimTime::sec(30), dist(SimTime::us(300), 0.6, SimTime::ms(3))));
  p.sources.push_back(spec(
      "hw-floor", SourceKind::kHardware, SourceScope::kPerCore,
      SimTime::sec(1), dist(SimTime::us(20), 0.8, SimTime::us(500))));
  p.base_jitter_mean = 1e-5;
  p.base_jitter_sd = 5e-5;
  return p;
}

AnalyticNoiseProfile ofp_mckernel_profile() {
  AnalyticNoiseProfile p;
  p.name = "ofp-mckernel";
  // LWK cores are free of OS activity; the KNL hardware floor (4-way SMT
  // arbitration, MCDRAM) still produces occasional ~0.5 ms excursions,
  // which is what keeps the Figure 4a McKernel curve below but not at the
  // ideal 6.5 ms line.
  p.sources.push_back(spec(
      "hw-floor", SourceKind::kHardware, SourceScope::kPerCore,
      SimTime::sec(1), dist(SimTime::us(25), 0.7, SimTime::us(400))));
  p.sources.push_back(spec(
      "hw-rare", SourceKind::kHardware, SourceScope::kPerCore,
      SimTime::sec(30), dist(SimTime::us(120), 0.6, SimTime::us(500))));
  p.base_jitter_mean = 5e-6;
  p.base_jitter_sd = 2e-5;
  return p;
}

}  // namespace hpcos::noise
