// Canonical noise-source parameter tables for the study's environments.
//
// One table per OS environment; the numbers are calibrated so the
// regenerated Table 2 / Figure 3 / Figure 4 match the paper's reported
// magnitudes (see EXPERIMENTS.md for paper-vs-measured). The same specs
// configure both the linuxk DES generators and the cluster-scale
// AnalyticNodeSampler, so micro (FWQ on one node) and macro (full-machine
// CDFs, application runs) views stay mutually consistent.
#pragma once

#include "noise/analytic.h"

namespace hpcos::noise {

// §4.2's individually-toggleable countermeasures. All true == production
// Fugaku. Each `false` re-enables the corresponding noise source, which is
// exactly how Table 2 was measured.
struct Countermeasures {
  bool bind_daemons = true;        // daemons -> assistant cores (cgroup)
  bool bind_kworkers = true;       // unbound kworkers -> assistant cores
  bool bind_blkmq = true;          // blk-mq hw ctx cpumask -> assistant
  bool stop_pmu_reads = true;      // suppress TCS periodic PMU collection
  bool suppress_global_tlbi = true;  // RHEL 8.2 single-core TLBI patch

  bool all_enabled() const {
    return bind_daemons && bind_kworkers && bind_blkmq && stop_pmu_reads &&
           suppress_global_tlbi;
  }
};

// Highly tuned Fugaku Linux (RHEL 8.3 + §4 countermeasures). The residual
// baseline (sar monitoring, residual nohz tick, hardware floor) is always
// present; disabled countermeasures add their sources back.
AnalyticNoiseProfile fugaku_linux_profile(const Countermeasures& cm = {});

// Fugaku IHK/McKernel: no ticks, no daemons, no kernel threads on LWK
// cores; only the hardware floor remains.
AnalyticNoiseProfile fugaku_mckernel_profile();

// Remove population-tail sources (node_fraction < 1). The dedicated
// 16-node testbed of Table 2 / Figure 3 is a hand-maintained system that
// does not exhibit the big machine's per-node heterogeneity.
AnalyticNoiseProfile strip_population_tails(AnalyticNoiseProfile profile);

// Moderately tuned OFP Linux (CentOS 7.3): nohz_full only — daemons and
// kworkers are unbound, IRQs balanced across the chip, THP management
// active. This is why Figure 4a is so much worse than 4b.
AnalyticNoiseProfile ofp_linux_profile();

// OFP IHK/McKernel: LWK cores quiet; KNL hardware floor (SMT sharing,
// MCDRAM refresh) remains.
AnalyticNoiseProfile ofp_mckernel_profile();

}  // namespace hpcos::noise
