// Background activity generators: the DES realization of a noise profile.
//
// Each NoiseSourceSpec becomes either a real daemon thread (scheduled by
// CFS, preempting application threads exactly the way systemd units do) or
// an event generator injecting kernel-mode interrupts / hardware stalls
// (kworkers, blk-mq completions, PMU IPIs, TLBI storms, sar contention).
// The statistical parameters are identical to what AnalyticNodeSampler
// uses, keeping node-DES and cluster-scale results consistent.
#pragma once

#include <vector>

#include "common/rng.h"
#include "noise/analytic.h"
#include "oskernel/kernel.h"
#include "oskernel/stall_bus.h"

namespace hpcos::noise {

// An OS daemon: sleeps for ~interval, wakes, burns CPU for a sampled
// duration, repeats. Where it wakes is the scheduler's business — which is
// precisely the daemon-binding countermeasure's lever.
class DaemonBody final : public os::ThreadBody {
 public:
  DaemonBody(SimTime mean_interval, DurationDist duration,
             RngStream rng);
  void step(os::ThreadContext& ctx) override;

 private:
  SimTime mean_interval_;
  DurationDist duration_;
  RngStream rng_;
  bool computing_ = false;
};

class BackgroundActivity {
 public:
  // `target_cores`: where generated noise lands (the application cores of
  // the partition this kernel owns). `system_cores`: where TLBI storm
  // initiators live. `bus`: chip-wide stall distribution for broadcast
  // TLBI; falls back to kernel-local stalls when null.
  BackgroundActivity(os::NodeKernel& kernel,
                     AnalyticNoiseProfile profile,
                     hw::CpuSet target_cores, hw::CpuSet system_cores,
                     os::ChipStallBus* bus, RngStream rng);

  // Spawn daemon threads and arm the generators. Call once.
  void start();

  std::size_t active_source_count() const { return active_sources_; }

 private:
  void start_source(const NoiseSourceSpec& spec, std::uint64_t index);
  void arm_generator(const NoiseSourceSpec& spec, RngStream rng,
                     hw::CoreId fixed_core);
  void fire(const NoiseSourceSpec& spec, RngStream& rng,
            hw::CoreId fixed_core);
  void deliver(const NoiseSourceSpec& spec, hw::CoreId core,
               SimTime duration);

  os::NodeKernel& kernel_;
  AnalyticNoiseProfile profile_;
  hw::CpuSet target_cores_;
  hw::CpuSet system_cores_;
  os::ChipStallBus* bus_;
  RngStream rng_;
  std::vector<hw::CoreId> target_list_;
  // Generator RNGs must outlive the scheduled closures that reference them.
  std::vector<std::unique_ptr<RngStream>> generator_rngs_;
  std::size_t active_sources_ = 0;
  bool started_ = false;
};

}  // namespace hpcos::noise
