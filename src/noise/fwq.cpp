#include "noise/fwq.h"

#include "common/check.h"

namespace hpcos::noise {

FwqThread::FwqThread(FwqConfig config) : config_(config) {
  HPCOS_CHECK(config_.work_quantum > SimTime::zero());
  HPCOS_CHECK(config_.iterations > 0);
  trace_.iteration_times.reserve(config_.iterations);
}

void FwqThread::step(os::ThreadContext& ctx) {
  if (started_) {
    // Previous quantum completed: the measured iteration time is wall time,
    // not work time — noise shows up as the difference.
    trace_.iteration_times.push_back(ctx.now() - iter_start_);
  } else {
    trace_.core = ctx.core();
    started_ = true;
  }
  if (iter_ >= config_.iterations) {
    finished_ = true;
    ctx.exit();
    return;
  }
  ++iter_;
  iter_start_ = ctx.now();
  ctx.compute(config_.work_quantum);
}

std::vector<FwqTrace> run_fwq(os::NodeKernel& kernel, const hw::CpuSet& cores,
                              FwqConfig config) {
  std::vector<const FwqThread*> bodies;
  const auto core_list = cores.to_vector();
  bodies.reserve(core_list.size());

  for (hw::CoreId core : core_list) {
    auto body = std::make_unique<FwqThread>(config);
    bodies.push_back(body.get());
    os::SpawnAttrs attrs;
    attrs.name = "fwq-" + std::to_string(core);
    attrs.affinity =
        hw::CpuSet::of(static_cast<std::size_t>(
                           kernel.topology().logical_cores()),
                       {core});
    kernel.spawn(std::move(body), std::move(attrs));
  }

  // Drive the simulation until every FWQ thread has finished. The guard
  // bounds runaway event loops (bodies that never progress).
  auto all_done = [&] {
    for (const FwqThread* b : bodies) {
      if (!b->finished()) return false;
    }
    return true;
  };
  while (!all_done()) {
    const bool progressed = kernel.simulator().step();
    HPCOS_CHECK_MSG(progressed, "FWQ deadlock: event queue drained early");
  }

  std::vector<FwqTrace> out;
  out.reserve(bodies.size());
  for (const FwqThread* b : bodies) out.push_back(b->trace());
  return out;
}

}  // namespace hpcos::noise
