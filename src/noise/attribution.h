// Noise attribution via performance counters (§4.2.2).
//
// The paper's diagnostic: capture instructions retired and execution time
// in user and kernel space across an observation window. If kernel-space
// instructions grew, the interference is OS processing (interrupts, page
// faults, daemons). If execution time grew with *no* change in retired
// instructions, the cause is hardware sharing (memory bandwidth, LLC,
// broadcast-TLBI stalls). The substrate's CoreAccounting carries exactly
// this split (user / kernel / stall time); this module reproduces the
// classification and synthesizes the counter view the paper works with.
#pragma once

#include <cstdint>
#include <string>

#include "hw/pmu.h"
#include "oskernel/kernel.h"

namespace hpcos::noise {

enum class InterferenceClass : std::uint8_t {
  kNone,                 // window ran clean
  kOsKernelActivity,     // kernel instructions grew: IRQs/daemons/syscalls
  kHardwareContention,   // only wall time grew: shared-resource stalls
  kMixed,                // both present in comparable measure
};
std::string to_string(InterferenceClass c);

struct AttributionResult {
  InterferenceClass cls = InterferenceClass::kNone;
  SimTime kernel_time;   // OS time stolen within the window
  SimTime stall_time;    // hardware stall within the window
  std::uint64_t interrupts = 0;
  // Synthesized counter view (instructions = time x IPC model), matching
  // what perf_event_open would report.
  hw::PmuCounters counters;
};

struct AttributionParams {
  // Below this, a component is considered measurement noise.
  SimTime threshold = SimTime::us(1);
  // When both components exceed the threshold, the smaller one must be at
  // least this fraction of the larger to call the window kMixed.
  double mixed_ratio = 0.25;
  // Instruction synthesis rates (instructions per nanosecond).
  double user_ipns = 2.0;    // application IPC at ~2 GHz
  double kernel_ipns = 1.0;  // kernel paths are branchier
};

// Classify the interference a core experienced between two accounting
// snapshots (taken with os::NodeKernel::accounting before/after the
// observation window).
AttributionResult attribute_window(const os::CoreAccounting& before,
                                   const os::CoreAccounting& after,
                                   const AttributionParams& params = {});

}  // namespace hpcos::noise
