#include "noise/attribution.h"

namespace hpcos::noise {

std::string to_string(InterferenceClass c) {
  switch (c) {
    case InterferenceClass::kNone:
      return "none";
    case InterferenceClass::kOsKernelActivity:
      return "os-kernel-activity";
    case InterferenceClass::kHardwareContention:
      return "hardware-contention";
    case InterferenceClass::kMixed:
      return "mixed";
  }
  return "?";
}

AttributionResult attribute_window(const os::CoreAccounting& before,
                                   const os::CoreAccounting& after,
                                   const AttributionParams& params) {
  AttributionResult r;
  r.kernel_time = after.kernel - before.kernel;
  r.stall_time = after.stall - before.stall;
  r.interrupts = after.interrupts - before.interrupts;

  const SimTime user_time = after.user - before.user;
  r.counters.add(hw::PmuEvent::kInstructionsUser,
                 static_cast<std::uint64_t>(
                     static_cast<double>(user_time.count_ns()) *
                     params.user_ipns));
  r.counters.add(hw::PmuEvent::kInstructionsKernel,
                 static_cast<std::uint64_t>(
                     static_cast<double>(r.kernel_time.count_ns()) *
                     params.kernel_ipns));
  // Cycles accrue through stalls as well — that is the §4.2.2 signature:
  // cycles grow while the instruction counters do not.
  r.counters.add(hw::PmuEvent::kCycles,
                 static_cast<std::uint64_t>(
                     (user_time + r.kernel_time + r.stall_time).count_ns() *
                     2.0));

  const bool kernel_significant = r.kernel_time >= params.threshold;
  const bool stall_significant = r.stall_time >= params.threshold;
  if (!kernel_significant && !stall_significant) {
    r.cls = InterferenceClass::kNone;
    return r;
  }
  if (kernel_significant && stall_significant) {
    const double big = static_cast<double>(
        std::max(r.kernel_time, r.stall_time).count_ns());
    const double small = static_cast<double>(
        std::min(r.kernel_time, r.stall_time).count_ns());
    if (small >= params.mixed_ratio * big) {
      r.cls = InterferenceClass::kMixed;
      return r;
    }
  }
  r.cls = r.kernel_time >= r.stall_time
              ? InterferenceClass::kOsKernelActivity
              : InterferenceClass::kHardwareContention;
  return r;
}

}  // namespace hpcos::noise
