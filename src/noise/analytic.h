// Statistical noise sources and the analytic FWQ/BSP sampler.
//
// The node DES reproduces noise mechanically (real kernel threads, IRQs,
// TLBI storms). That is exact but O(events); a full-scale Fugaku run
// (158,976 nodes x 48 cores x ~55k FWQ iterations) needs the statistical
// equivalent instead. A NoiseSourceSpec describes one source's arrival
// process and duration distribution; the same spec table parameterizes
// both the DES subsystem generators (linuxk) and this sampler, and the
// test suite checks the two agree.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "sim/trace.h"

namespace hpcos::noise {

// Lognormal duration, clamped to [min, max]; median/sigma parameterize the
// underlying distribution. Degenerates to a constant when sigma == 0.
struct DurationDist {
  SimTime median;
  double sigma = 0.0;
  SimTime min = SimTime::zero();
  SimTime max = SimTime::max();

  SimTime sample(RngStream& rng) const;
  // Expected value (clamping ignored; adequate for rate estimates).
  SimTime mean() const;
  // Inverse CDF (clamped); q in [0, 1].
  SimTime quantile(double q) const;
  // One draw distributed as max(X_1..X_k): direct for small k, inverse-CDF
  // of U^(1/k) otherwise. This is what makes machine-scale "worst thread
  // in the barrier window" sampling O(1) instead of O(threads).
  SimTime sample_max(std::uint64_t k, RngStream& rng) const;
};

// Inverse standard-normal CDF (Acklam's rational approximation, ~1e-9
// absolute error); exposed for tests.
double inverse_normal_cdf(double p);

// How a source's occurrences map onto cores.
enum class SourceScope : std::uint8_t {
  kPerCore,            // independent arrival process on every app core
  kPerNodeRandomCore,  // node-level process; each hit lands on one core
                       // (an unbound daemon/kworker waking somewhere)
  kAllCores,           // each hit stalls every app core at once (PMU IPIs,
                       // broadcast TLBI victims)
};

// Which kernel subsystem generates the noise; linuxk uses this to route
// spec entries to its DES generators, and the countermeasure toggles
// enable/disable kinds wholesale.
enum class SourceKind : std::uint8_t {
  kDaemon,
  kKworker,
  kBlkMq,
  kPmuRead,
  kTlbiStorm,
  kSar,
  kDeviceIrq,
  kResidualTick,
  kHardware,  // non-OS jitter floor events (thermal, shared-resource)
};
std::string to_string(SourceKind k);

// Trace category a kind's events are recorded under — the bridge between
// the statistical source table and ftrace-style TraceRecord analysis
// (noise tagging in the BSP engine, the trace-side attribution ledger).
sim::TraceCategory trace_category(SourceKind k);

struct NoiseSourceSpec {
  std::string name;
  SourceKind kind = SourceKind::kHardware;
  SourceScope scope = SourceScope::kPerCore;
  // Mean inter-arrival of the process at its scope (per core for kPerCore,
  // per node otherwise). Arrivals are Poisson.
  SimTime mean_interval;
  DurationDist duration;
  // Fraction of nodes that exhibit this source at all (straggler modeling:
  // a handful of nodes in 158k have a misbehaving service).
  double node_fraction = 1.0;
  // DES realization hint: number of daemon threads realizing a
  // kPerNodeRandomCore process (each gets interval * instances). The
  // statistical process is unchanged; purely spreads load across actors.
  int instances = 1;
};

struct AnalyticNoiseProfile {
  std::string name;
  std::vector<NoiseSourceSpec> sources;
  // Continuous hardware jitter floor: every compute interval is scaled by
  // (1 + max(0, N(mean, sd))).
  double base_jitter_mean = 0.0;
  double base_jitter_sd = 0.0;
};

// Samples FWQ iteration lengths / BSP rank intervals for ONE node. The
// constructor decides (per node_fraction) which sources are active on this
// node, so distinct nodes drawn from distinct streams form a heterogeneous
// population.
class AnalyticNodeSampler {
 public:
  AnalyticNodeSampler(const AnalyticNoiseProfile& profile, int app_cores,
                      RngStream rng);

  // Wall time of one FWQ iteration of `quantum` work on one core.
  SimTime sample_iteration(SimTime quantum);

  // Iteration with the jitter floor only (no discrete source hits); used
  // when hits are accounted for separately (cluster::run_fwq_campaign).
  SimTime sample_floor_iteration(SimTime quantum);

  // Delay added to a rank of `threads` threads over a synchronization
  // interval of `sync` (the rank waits for its worst-hit thread). This is
  // the stochastic counterpart of Eq. 1.
  SimTime sample_rank_delay(SimTime sync, int threads);

  const std::vector<NoiseSourceSpec>& active_sources() const {
    return active_;
  }

 private:
  // Expected per-core arrival interval of `spec` on this node.
  SimTime per_core_interval(const NoiseSourceSpec& spec) const;

  std::vector<NoiseSourceSpec> active_;
  double base_jitter_mean_;
  double base_jitter_sd_;
  int app_cores_;
  RngStream rng_;
};

}  // namespace hpcos::noise
