// Bulk-synchronous-parallel cluster engine.
//
// Runs a Workload on a machine configuration under one OsEnvironment and
// produces per-iteration and total times. Per iteration:
//
//   T_rank   = compute x TLB-mix factor
//            + churn median + fault-in
//   T_iter   = T_rank
//            + (worst-rank imbalance extra)
//            + (worst-rank churn-tail extra)
//            + machine-wide noise delay over the busy window  (Eq. 1)
//            + collectives (allreduce / halo / barrier)
//
// Every rank pays the medians; the barrier additionally waits for the
// worst rank's tail terms, which is where scale enters.
#pragma once

#include <vector>

#include "cluster/machine_noise.h"
#include "cluster/osenv.h"
#include "cluster/workload.h"
#include "net/collectives.h"
#include "obs/timeseries/timeseries.h"
#include "sim/trace.h"

namespace hpcos::cluster {

struct RunResult {
  std::string workload;
  std::string environment;
  JobConfig job;
  SimTime init_time;
  std::vector<SimTime> iteration_times;
  SimTime total;  // init + sum(iterations)

  double total_seconds() const { return total.to_sec(); }
  // Wall time of one of `num_steps` equal slices of the iteration loop,
  // with the init phase folded into step 0 (how GAMERA's per-step numbers
  // read: setup dominates the first time step, §6.4).
  SimTime step_time(int step, int num_steps) const;
  // Figure-of-merit used by the paper's relative plots: iterations per
  // second of the solve loop (init included in `total` but the paper's
  // metrics are dominated by the loop except for GAMERA).
  double performance() const;
};

class BspEngine {
 public:
  BspEngine(const OsEnvironment& env, JobConfig job, Seed seed);

  // Optional whole-run span recording: when set, run() writes one
  // parent-linked phase tree per init/iteration (compute, fault-in,
  // churn, noise-wait, allreduce split, halo, barrier) into `trace` on
  // the synthetic timeline track `track` (used as the record's core id;
  // exporters turn it into a named rank track). nullptr detaches.
  //
  // `anchor` places the rank timeline on an absolute clock: phase spans
  // start at `anchor` instead of zero, so a run anchored at a DES node's
  // current simulator time shares that node's wall timeline and FWQ/noise
  // trace events can be overlaid directly on the bsp:* windows
  // (obs/attrib). The default keeps the historical zero-based virtual
  // timeline. The dominant machine-noise source of each iteration's
  // noise-wait is tagged as a `noise:<source>` child span.
  void set_trace(sim::TraceBuffer* trace, hw::CoreId track = 0,
                 SimTime anchor = SimTime::zero());

  // Optional streaming phase series (the Fig. 3 per-phase timeline view):
  // when set, run() records each iteration's phase durations at the
  // iteration's start on the run timeline into `<prefix><phase>_us`
  // series (compute, fault_in, churn, imbalance, noise_wait, comm,
  // iteration — units in the last name segment per the registry naming
  // rule). Recording reads already-drawn values only, so attaching a
  // series sink never changes the simulated result. nullptr detaches.
  void set_series(obs::ts::SeriesSet* series, std::string prefix = "bsp.",
                  SimTime resolution = SimTime::from_ms(50),
                  std::size_t capacity = 128);

  RunResult run(const Workload& workload);

  // Expected fractional noise overhead for a given sync interval — the
  // deterministic Eq. 1 view of this machine (used by tests/benches).
  double analytic_noise_delay(SimTime sync_interval) const;

 private:
  const OsEnvironment& env_;
  JobConfig job_;
  Seed seed_;
  net::Collectives collectives_;
  net::RdmaRegistrationModel rdma_;
  sim::TraceBuffer* trace_ = nullptr;
  hw::CoreId trace_track_ = 0;
  SimTime trace_anchor_;
  obs::ts::SeriesSet* series_ = nullptr;
  std::string series_prefix_ = "bsp.";
  SimTime series_resolution_ = SimTime::from_ms(50);
  std::size_t series_capacity_ = 128;
};

// Convenience: mean relative performance of `env` vs `baseline` over
// `trials` seeded runs (the paper's bars: Linux normalized to 1.0).
// Trials run across the host worker pool (each trial owns its seeded
// engines and an index-addressed result slot, merged in trial order, so
// the result is identical for any `threads`); threads = 0 uses
// default_parallelism(), 1 runs serially.
struct RelativeResult {
  double mean_ratio = 0.0;   // candidate perf / baseline perf
  double stddev_ratio = 0.0;
};
RelativeResult relative_performance(const Workload& workload,
                                    const OsEnvironment& baseline,
                                    const OsEnvironment& candidate,
                                    JobConfig job, int trials, Seed seed,
                                    std::size_t threads = 0);

}  // namespace hpcos::cluster
