// Machine-scale FWQ campaigns (Figure 4).
//
// The paper runs FWQ on every core of up to 158,976 nodes for ten ~6 min
// measurements, keeps all samples for the CDF, and saves raw data only for
// the 100 worst nodes. Generating ~4e11 individual iterations is neither
// possible nor necessary: per node we draw each noise source's *hit count*
// over the whole campaign (Poisson) and materialize only the hit
// iterations individually; the ocean of unhit iterations enters the
// histogram as a weighted bulk (with a small representative sample of the
// jitter floor). Per-node worst values drive the worst-100 selection.
//
// Node simulations run across the host work-stealing scheduler
// (common/parallel.h); campaigns issued from inside another parallel
// region (e.g. a bench plan point) nest as child task groups.
// Each node's randomness comes from its own split of the campaign seed and
// each worker writes into index-addressed per-shard slots that are merged
// in rank order, so results are byte-identical for any `threads` value
// (DESIGN §6).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/sketch.h"
#include "noise/analytic.h"
#include "noise/fwq.h"
#include "noise/metrics.h"
#include "obs/registry.h"
#include "obs/timeseries/timeseries.h"

namespace hpcos::cluster {

struct FwqCampaignConfig {
  std::int64_t nodes = 16;
  int app_cores = 48;
  SimTime work_quantum = SimTime::from_ms(6.5);
  // Total measured wall time per core (paper: 10 x ~6 min = 1 h). Must
  // cover at least one work quantum; an empty campaign would silently
  // report zero noise.
  SimTime duration_per_core = SimTime::sec(3600);
  int worst_nodes_to_keep = 100;
  // Representative jitter-floor samples materialized per node.
  int floor_samples_per_node = 32;
  // Cap on individually-materialized hits per (node, source); the rest
  // enters the histogram as a weighted bulk plus one max-of-k tail draw.
  std::uint64_t max_materialized_hits = 4096;
  // Per-core duration jitter within a node-wide (kAllCores) noise event.
  // 0 (default) keeps the historical model: one shared duration sample
  // stalls every core identically. > 0 multiplies each core's share of a
  // materialized hit by an independent lognormal(median=1, sigma) factor —
  // closer to real collective OS activity, where cores enter/leave the
  // event at slightly different times. Results remain deterministic for a
  // fixed seed and independent of `threads` either way.
  double all_cores_jitter_sigma = 0.0;
  // Host worker threads for the per-node loop: 0 = default_parallelism(),
  // 1 = serial.
  std::size_t threads = 0;
  // Nodes per accumulation shard. Shard boundaries — not the host thread
  // count — define the floating-point summation order, which is what makes
  // the result independent of `threads`. The default of 64 comes from the
  // bench_fig4 "nodes_per_shard sweep": it sits in the flat center of the
  // merge-overhead vs scheduling-granularity curve (8..1024 measured), and
  // at full Fugaku scale still yields ~2,500 shards — enough granularity
  // for any plausible host pool while merge cost stays negligible.
  std::int64_t nodes_per_shard = 64;
  // Capacity K of each shard's bounded worst-node heap. The campaign never
  // buffers O(nodes) per-node maxima: each shard keeps its K largest and
  // the merge selects the global worst-N from those. 0 derives K from
  // worst_nodes_to_keep (the smallest exact value); smaller explicit
  // values trade exactness of the worst-N tail for memory.
  int worst_heap_capacity = 0;
  // Optional observability sink. Folded into serially after the parallel
  // phase (fwq.campaign.nodes/.iterations, fwq.topk.pushes/.evictions) —
  // shards count locally, the Registry stays single-writer.
  obs::Registry* registry = nullptr;
  // Streaming timeline (off by default): per-source overhead series, tail
  // quantile sketches, and the Figure 4 node x time heatmap. Event
  // timestamps come from a dedicated RNG substream (node split 2), so
  // enabling the timeline never perturbs the existing draw sequences —
  // every non-timeline number in the result is bit-identical either way.
  bool timeline = false;
  // Ring capacity (buckets) of each per-source series. The base resolution
  // is timeline_resolution, or duration_per_core / timeline_buckets when
  // zero; a finer explicit resolution exercises the 2x auto-coarsening.
  std::size_t timeline_buckets = 96;
  SimTime timeline_resolution = SimTime::zero();
  // Relative-error bound (alpha) of the per-source overhead sketches.
  double sketch_relative_error = 0.01;
  // Heatmap grid shape (rows clamp to the node count).
  std::size_t heatmap_rows = 32;
  std::size_t heatmap_cols = 96;
  Seed seed{2021};
};

// Where one campaign's overhead went: total time stolen by one noise
// source across every node and core, as accumulated into the CDF. The
// stolen_us terms mirror the overhead sums exactly (same shard order), so
//   sum(per_source[i].stolen_us) == stats.noise_rate * t_min_us * samples
// up to floating-point reassociation — the attribution ledger's
// reconciliation identity (obs/attrib).
struct SourceAttribution {
  std::string source;  // spec name; "jitter-floor" for the non-hit bulk
  noise::SourceKind kind = noise::SourceKind::kHardware;
  noise::SourceScope scope = noise::SourceScope::kPerCore;
  double stolen_us = 0.0;          // sum of (T_i - quantum) it caused
  std::uint64_t hit_iterations = 0;  // iterations it lengthened
  double worst_us = 0.0;           // worst single overhead it caused
};

// Streaming view of one campaign (present when config.timeline is set).
// All containers parallel FwqCampaignResult::per_source (profile order,
// jitter floor last). Per-source series sums mirror the ledger's stolen_us
// exactly (same overhead terms, shard-order merge), which is the
// reconciliation the timeline_smoke job checks to <1e-9 relative error.
struct FwqTimeline {
  bool enabled = false;
  SimTime duration;  // campaign window [0, duration_per_core)
  // Overhead (us) over virtual time, one series per ledger slot.
  std::vector<obs::ts::TimeSeries> per_source;
  // Tail sketches of per-iteration overhead (us), one per ledger slot.
  std::vector<QuantileSketch> sketches;
  // Figure 4 analogue: node-bin x time-bin overhead (us) grid.
  obs::ts::NodeTimeGrid heatmap;
};

struct FwqCampaignResult {
  // All iteration lengths (us), log-binned for the CDF plot.
  LogHistogram cdf{1000.0, 1e6, 2048};
  noise::NoiseStats stats;
  std::uint64_t total_iterations = 0;
  // Worst (longest) iteration per retained node, sorted descending (us).
  std::vector<double> worst_node_max_us;
  // Per-source ledger in profile order (inactive sources kept with zero
  // counts so the layout is profile-stable), with the jitter floor last.
  std::vector<SourceAttribution> per_source;
  FwqTimeline timeline;
};

FwqCampaignResult run_fwq_campaign(const noise::AnalyticNoiseProfile& profile,
                                   const FwqCampaignConfig& config);

// DES cross-check: run real FWQ on a SimNode-owned kernel and return the
// same stats shape (used by tests and the small-scale portion of the
// Figure 4 bench).
FwqCampaignResult fwq_result_from_traces(
    const std::vector<noise::FwqTrace>& traces);

}  // namespace hpcos::cluster
