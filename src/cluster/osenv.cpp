#include "cluster/osenv.h"

#include <algorithm>

#include "hw/tlb.h"

namespace hpcos::cluster {

std::string to_string(OsKind k) {
  return k == OsKind::kLinux ? "Linux" : "McKernel";
}

double OsEnvironment::tlb_compute_factor(std::uint64_t working_set_bytes,
                                         double mem_bound_fraction,
                                         double coverage_hint) const {
  const hw::TlbModel tlb(platform.tlb);
  const double large =
      tlb.access_slowdown(working_set_bytes, mem.large_page);
  const double base = tlb.access_slowdown(working_set_bytes, mem.base_page);
  // Hints can only raise coverage (a code cannot demote hugeTLBfs pages).
  const double coverage = std::max(mem.large_page_coverage, coverage_hint);
  const double mix =
      (coverage * large + (1.0 - coverage) * base) *
      (1.0 + mem.os_overhead);
  return 1.0 + mem_bound_fraction * (mix - 1.0);
}

SimTime OsEnvironment::churn_median(std::uint64_t bytes) const {
  if (bytes == 0) return SimTime::zero();
  const double mib = static_cast<double>(bytes) / (1024.0 * 1024.0);
  return mem.churn_fixed + mem.churn_per_mib.scaled(mib);
}

SimTime OsEnvironment::fault_in(std::uint64_t bytes) const {
  if (bytes == 0) return SimTime::zero();
  const double large_bytes =
      static_cast<double>(bytes) * mem.large_page_coverage;
  const double base_bytes = static_cast<double>(bytes) - large_bytes;
  const double large_faults =
      large_bytes / static_cast<double>(hw::bytes(mem.large_page));
  const double base_faults =
      base_bytes / static_cast<double>(hw::bytes(mem.base_page));
  return mem.fault_large.scaled(large_faults) +
         mem.fault_base.scaled(base_faults);
}

OsEnvironment make_ofp_linux_env() {
  OsEnvironment e(hw::make_ofp_platform());
  e.name = "OFP/Linux";
  e.os = OsKind::kLinux;
  e.profile = noise::ofp_linux_profile();
  e.mem = MemEnvModel{
      .base_page = hw::PageSize::k4K,
      .large_page = hw::PageSize::k2M,
      // THP on CentOS 7 promotes opportunistically; compaction failures
      // and unaligned heaps leave a sizable 4K remainder.
      .large_page_coverage = 0.70,
      .heap = os::HeapBehavior::kReleaseToOs,
      .fault_base = SimTime::from_us(1.8),
      .fault_large = SimTime::us(12),
      // glibc releases big blocks: re-allocation refaults THP pages and
      // shoots down sibling TLBs; khugepaged/compaction gives a fat tail.
      .churn_fixed = SimTime::us(8),
      .churn_per_mib = SimTime::from_us(7.5),
      .churn_sigma = 0.45,
      .churn_max_factor = 8.0,
      .os_overhead = 0.03,  // CentOS 7.3-era kernel paths
  };
  e.fabric = net::make_omnipath_params();
  e.rdma_path = net::RegistrationPath::kLinuxNative;
  // OmniPath MR registration pins at the x86 base page size.
  e.rdma.linux_pin_page = hw::PageSize::k4K;
  e.rdma.pin_per_page = SimTime::ns(150);
  return e;
}

OsEnvironment make_ofp_mckernel_env() {
  OsEnvironment e(hw::make_ofp_platform());
  e.name = "OFP/McKernel";
  e.os = OsKind::kMcKernel;
  e.profile = noise::ofp_mckernel_profile();
  e.mem = MemEnvModel{
      .base_page = hw::PageSize::k4K,
      .large_page = hw::PageSize::k2M,
      .large_page_coverage = 1.0,  // large-page-first memory manager
      .heap = os::HeapBehavior::kCached,
      .fault_base = SimTime::ns(600),
      .fault_large = SimTime::us(2),
      // Retained physical memory: churn is two cheap local syscalls.
      .churn_fixed = SimTime::us(2),
      .churn_per_mib = SimTime::ns(120),
      .churn_sigma = 0.05,
      .churn_max_factor = 3.0,
  };
  e.fabric = net::make_omnipath_params();
  // No Tofu on OFP; the OmniPath PicoDriver ([16]) is the analogue and was
  // deployed there, so registration is LWK-local as well.
  e.rdma_path = net::RegistrationPath::kMcKernelPicoDriver;
  return e;
}

OsEnvironment make_fugaku_linux_env(const noise::Countermeasures& cm) {
  OsEnvironment e(hw::make_fugaku_platform());
  e.name = "Fugaku/Linux";
  e.os = OsKind::kLinux;
  e.profile = noise::fugaku_linux_profile(cm);
  e.mem = MemEnvModel{
      .base_page = hw::PageSize::k64K,
      .large_page = hw::PageSize::k2M,  // contiguous-bit groups
      .large_page_coverage = 1.0,       // hugeTLBfs everywhere (§4.1.3)
      .heap = os::HeapBehavior::kCached,  // Fugaku runtime caches arenas
      .fault_base = SimTime::us(1),
      .fault_large = SimTime::us(8),
      .churn_fixed = SimTime::us(3),
      .churn_per_mib = SimTime::ns(900),
      .churn_sigma = 0.25,
      .churn_max_factor = 8.0,
      .os_overhead = 0.03,  // tuned RHEL 8: small residual kernel cost
  };
  e.fabric = net::make_tofud_params();
  e.rdma_path = net::RegistrationPath::kLinuxNative;
  // The Tofu driver pins at base-page granularity regardless of the
  // hugeTLBfs backing (get_user_pages walks 64K PTEs).
  e.rdma.linux_pin_page = hw::PageSize::k64K;
  return e;
}

OsEnvironment make_fugaku_mckernel_env(bool picodriver) {
  OsEnvironment e(hw::make_fugaku_platform());
  e.name = "Fugaku/McKernel";
  e.os = OsKind::kMcKernel;
  e.profile = noise::fugaku_mckernel_profile();
  e.mem = MemEnvModel{
      .base_page = hw::PageSize::k64K,
      .large_page = hw::PageSize::k2M,
      .large_page_coverage = 1.0,
      .heap = os::HeapBehavior::kCached,
      .fault_base = SimTime::ns(600),
      .fault_large = SimTime::us(2),
      .churn_fixed = SimTime::us(2),
      .churn_per_mib = SimTime::ns(120),
      .churn_sigma = 0.05,
      .churn_max_factor = 3.0,
  };
  e.fabric = net::make_tofud_params();
  e.rdma_path = picodriver ? net::RegistrationPath::kMcKernelPicoDriver
                           : net::RegistrationPath::kMcKernelOffloaded;
  return e;
}

}  // namespace hpcos::cluster
