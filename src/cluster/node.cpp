#include "cluster/node.h"

namespace hpcos::cluster {

SimNode::SimNode(hw::PlatformConfig platform, Options options)
    : platform_(std::move(platform)),
      owned_sim_(options.shared_simulator == nullptr
                     ? std::make_unique<sim::Simulator>()
                     : nullptr),
      sim_(options.shared_simulator != nullptr ? options.shared_simulator
                                               : owned_sim_.get()),
      trace_(options.trace_capacity),
      observability_(options.observability),
      seed_(options.seed) {}

std::unique_ptr<SimNode> SimNode::make_linux_node(hw::PlatformConfig platform,
                                                  linuxk::LinuxConfig config,
                                                  Options options) {
  auto node =
      std::unique_ptr<SimNode>(new SimNode(std::move(platform), options));
  node->linux_ = std::make_unique<linuxk::LinuxKernel>(
      *node->sim_, node->platform_.topology,
      node->platform_.topology.all_cores(), std::move(config), node->seed_,
      node->trace_.enabled() ? &node->trace_ : nullptr, &node->bus_);
  if (node->observability_) node->linux_->set_registry(&node->registry_);
  node->linux_->boot();
  return node;
}

std::unique_ptr<SimNode> SimNode::make_multikernel_node(
    hw::PlatformConfig platform, linuxk::LinuxConfig linux_config,
    mck::McKernelConfig lwk_config, Options options) {
  auto node =
      std::unique_ptr<SimNode>(new SimNode(std::move(platform), options));
  const auto& topo = node->platform_.topology;
  sim::TraceBuffer* trace =
      node->trace_.enabled() ? &node->trace_ : nullptr;

  // Host Linux keeps the system cores.
  node->linux_ = std::make_unique<linuxk::LinuxKernel>(
      *node->sim_, topo, topo.system_cores(), std::move(linux_config),
      node->seed_, trace, &node->bus_);
  node->linux_->boot();

  // IHK reserves the application partition and most of the memory, then
  // creates an LWK instance over it.
  const std::uint64_t host_mem = topo.total_memory_bytes();
  const std::uint64_t lwk_mem = host_mem - host_mem / 8;  // 7/8 to the LWK
  node->ihk_ = std::make_unique<ihk::IhkManager>(
      *node->sim_, topo, topo.all_cores(), topo.system_cores(), host_mem);
  HPCOS_CHECK(node->ihk_->partition().reserve_cpus(topo.application_cores()));
  HPCOS_CHECK(node->ihk_->partition().reserve_memory(lwk_mem));
  node->os_instance_ =
      node->ihk_->create_os_instance(topo.application_cores(), lwk_mem);
  HPCOS_CHECK(node->os_instance_ >= 0);

  node->lwk_ = std::make_unique<mck::McKernel>(
      *node->sim_, topo, topo.application_cores(), std::move(lwk_config),
      Seed{node->seed_.value ^ 0x5A5Aull}, trace, &node->bus_);
  node->lwk_->boot();
  node->ihk_->boot(node->os_instance_);

  auto& inst = node->ihk_->instance(node->os_instance_);
  node->offloader_ = std::make_unique<mck::SyscallOffloader>(
      *node->lwk_, *node->linux_, *inst.to_host, *inst.to_lwk,
      topo.system_cores());
  if (node->observability_) {
    node->linux_->set_registry(&node->registry_);
    node->lwk_->set_registry(&node->registry_);
    node->offloader_->set_registry(&node->registry_);  // + both IKC channels
  }
  return node;
}

os::NodeKernel& SimNode::app_kernel() {
  if (lwk_ != nullptr) return *lwk_;
  return *linux_;
}

}  // namespace hpcos::cluster
