// Full DES node assembly: one simulated compute node with its OS stack.
//
// Two shapes, matching the study:
//  * Linux node   — one LinuxKernel owning every core (the production
//                   Linux environments of Table 1);
//  * multi-kernel — Linux confined to the system cores, IHK reserving the
//                   application partition, McKernel booted on it, and the
//                   syscall-delegation path wired through IKC + proxies.
//
// This is the object the node-level experiments (Table 2, Figure 3, the
// DES side of Figure 4) and the examples drive.
#pragma once

#include <memory>

#include "hw/platform.h"
#include "ihk/ihk.h"
#include "linuxk/linux_kernel.h"
#include "mckernel/mckernel.h"
#include "mckernel/offload.h"
#include "obs/registry.h"
#include "oskernel/stall_bus.h"
#include "sim/simulator.h"

namespace hpcos::cluster {

struct SimNodeOptions {
  Seed seed{0xF00D};
  std::size_t trace_capacity = 0;  // 0 disables tracing
  // Wire every subsystem's counters into the node registry. Off by
  // default: instrumented hot paths then cost exactly one branch.
  bool observability = false;
  // When set, the node attaches to this simulator instead of owning one
  // (multi-node DES clusters share a clock; see des_cluster.h).
  sim::Simulator* shared_simulator = nullptr;
};

class SimNode {
 public:
  using Options = SimNodeOptions;

  // Linux-only node: the kernel owns all cores and runs the given config.
  static std::unique_ptr<SimNode> make_linux_node(hw::PlatformConfig platform,
                                                  linuxk::LinuxConfig config,
                                                  Options options = {});

  // Multi-kernel node: Linux on the system cores, McKernel on the
  // application cores via IHK, offload path wired.
  static std::unique_ptr<SimNode> make_multikernel_node(
      hw::PlatformConfig platform, linuxk::LinuxConfig linux_config,
      mck::McKernelConfig lwk_config, Options options = {});

  // Kernel that runs application threads (McKernel when present).
  os::NodeKernel& app_kernel();
  bool is_multikernel() const { return lwk_ != nullptr; }

  sim::Simulator& simulator() { return *sim_; }
  const hw::NodeTopology& topology() const { return platform_.topology; }
  const hw::PlatformConfig& platform() const { return platform_; }
  linuxk::LinuxKernel& linux() { return *linux_; }
  mck::McKernel* lwk() { return lwk_.get(); }
  mck::SyscallOffloader* offloader() { return offloader_.get(); }
  ihk::IhkManager* ihk_manager() { return ihk_.get(); }
  sim::TraceBuffer& trace() { return trace_; }
  // The node's counter/histogram registry; every kernel, IKC channel, and
  // the offload path register into it when `options.observability` is on
  // (nothing registers otherwise — hot paths keep their disabled branch).
  obs::Registry& registry() { return registry_; }

 private:
  explicit SimNode(hw::PlatformConfig platform, Options options);

  hw::PlatformConfig platform_;
  std::unique_ptr<sim::Simulator> owned_sim_;
  sim::Simulator* sim_;  // owned_sim_.get() or the shared simulator
  sim::TraceBuffer trace_;
  obs::Registry registry_;
  bool observability_ = false;
  os::ChipStallBus bus_;
  Seed seed_;
  std::unique_ptr<linuxk::LinuxKernel> linux_;
  std::unique_ptr<ihk::IhkManager> ihk_;
  int os_instance_ = -1;
  std::unique_ptr<mck::McKernel> lwk_;
  std::unique_ptr<mck::SyscallOffloader> offloader_;
};

}  // namespace hpcos::cluster
