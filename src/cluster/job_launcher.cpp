#include "cluster/job_launcher.h"

#include <algorithm>

#include "common/check.h"

namespace hpcos::cluster {

LaunchedJob JobLauncher::launch(const LaunchSpec& spec) {
  HPCOS_CHECK(spec.ranks > 0 && spec.threads_per_rank > 0);
  const auto& topo = node_.topology();
  os::NodeKernel& app_kernel = node_.app_kernel();

  LaunchedJob job;

  // Container setup: only meaningful when Linux runs the application
  // cores itself. On a multi-kernel node the core partition is already
  // structural (§5.1).
  if (spec.containerized && !node_.is_multikernel()) {
    auto& cg = node_.linux().cgroups();
    std::vector<hw::NumaId> app_mems;
    std::vector<hw::NumaId> sys_mems;
    for (const auto& d : topo.numa_domains()) {
      (d.is_system_domain ? sys_mems : app_mems).push_back(d.id);
    }
    cg.create_cpuset(LaunchedJob::kAppCpuset, topo.application_cores(),
                     app_mems);
    cg.create_cpuset(LaunchedJob::kSystemCpuset, topo.system_cores(),
                     sys_mems);
    cg.create_memory(LaunchedJob::kAppMemcg, spec.memory_limit_bytes);
    job.used_cgroups = true;
  }

  // Application NUMA domains, in id order.
  std::vector<const hw::NumaDomain*> domains;
  for (const auto& d : topo.numa_domains()) {
    if (!d.is_system_domain && d.cores.any()) domains.push_back(&d);
  }
  HPCOS_CHECK_MSG(!domains.empty(), "no application NUMA domains");

  // Round-robin ranks over domains; each rank takes a disjoint slice of
  // its domain's cores (§4.1.4's automatic binding).
  const int ranks_per_domain =
      (spec.ranks + static_cast<int>(domains.size()) - 1) /
      static_cast<int>(domains.size());
  for (int rank = 0; rank < spec.ranks; ++rank) {
    const auto domain_idx =
        static_cast<std::size_t>(rank) % domains.size();
    const hw::NumaDomain& domain = *domains[domain_idx];
    const int slot = rank / static_cast<int>(domains.size());

    const auto domain_cores = domain.cores.to_vector();
    const int slice =
        std::max(1, static_cast<int>(domain_cores.size()) /
                        ranks_per_domain);
    const int first = slot * slice;
    HPCOS_CHECK_MSG(first < static_cast<int>(domain_cores.size()),
                    "more ranks than available cores in the NUMA domain");
    hw::CpuSet cores(static_cast<std::size_t>(topo.logical_cores()));
    for (int c = first;
         c < std::min(first + slice,
                      static_cast<int>(domain_cores.size()));
         ++c) {
      cores.set(domain_cores[static_cast<std::size_t>(c)]);
    }

    os::ProcessAttrs attrs;
    attrs.name = "rank-" + std::to_string(rank);
    attrs.preferred_page_size = spec.preferred_page_size;
    attrs.paging = spec.paging;
    attrs.heap = spec.heap;
    const os::Pid pid = app_kernel.create_process(std::move(attrs));
    if (job.used_cgroups) {
      node_.linux().cgroups().assign_memory_cgroup(pid,
                                                   LaunchedJob::kAppMemcg);
    }
    job.ranks.push_back(RankPlacement{.rank = rank,
                                      .pid = pid,
                                      .numa = domain.id,
                                      .cores = std::move(cores)});
  }
  return job;
}

os::ThreadId JobLauncher::spawn_rank_thread(
    const LaunchedJob& job, int rank, std::unique_ptr<os::ThreadBody> body,
    const std::string& name) {
  HPCOS_CHECK(rank >= 0 &&
              static_cast<std::size_t>(rank) < job.ranks.size());
  const RankPlacement& placement = job.ranks[static_cast<std::size_t>(rank)];
  os::SpawnAttrs attrs;
  attrs.name = name;
  attrs.pid = placement.pid;
  attrs.affinity = placement.cores;
  return node_.app_kernel().spawn(std::move(body), std::move(attrs));
}

}  // namespace hpcos::cluster
