#include "cluster/config_json.h"

#include "net/fabric.h"
#include "net/rdma.h"

namespace hpcos::cluster {

namespace {

JsonValue ns_of(SimTime t) {
  return JsonValue(static_cast<std::int64_t>(t.count_ns()));
}

JsonValue to_json(const noise::DurationDist& d) {
  JsonValue v = JsonValue::object();
  v.set("median_ns", ns_of(d.median));
  v.set("sigma", d.sigma);
  v.set("min_ns", ns_of(d.min));
  v.set("max_ns", ns_of(d.max));
  return v;
}

const char* scope_name(noise::SourceScope s) {
  switch (s) {
    case noise::SourceScope::kPerCore: return "per-core";
    case noise::SourceScope::kPerNodeRandomCore: return "per-node-random-core";
    case noise::SourceScope::kAllCores: return "all-cores";
  }
  return "unknown";
}

}  // namespace

JsonValue to_config_json(const FwqCampaignConfig& config) {
  JsonValue v = JsonValue::object();
  v.set("schema", "hpcos-config-fwq-campaign/1");
  v.set("nodes", static_cast<std::int64_t>(config.nodes));
  v.set("app_cores", config.app_cores);
  v.set("work_quantum_ns", ns_of(config.work_quantum));
  v.set("duration_per_core_ns", ns_of(config.duration_per_core));
  v.set("worst_nodes_to_keep", config.worst_nodes_to_keep);
  v.set("floor_samples_per_node", config.floor_samples_per_node);
  v.set("max_materialized_hits", config.max_materialized_hits);
  v.set("all_cores_jitter_sigma", config.all_cores_jitter_sigma);
  // nodes_per_shard fixes the summation order and the worst-heap merge —
  // semantic, unlike `threads`.
  v.set("nodes_per_shard", static_cast<std::int64_t>(config.nodes_per_shard));
  v.set("worst_heap_capacity", config.worst_heap_capacity);
  v.set("timeline", config.timeline);
  v.set("timeline_buckets",
        static_cast<std::uint64_t>(config.timeline_buckets));
  v.set("timeline_resolution_ns", ns_of(config.timeline_resolution));
  v.set("sketch_relative_error", config.sketch_relative_error);
  v.set("heatmap_rows", static_cast<std::uint64_t>(config.heatmap_rows));
  v.set("heatmap_cols", static_cast<std::uint64_t>(config.heatmap_cols));
  v.set("seed", config.seed.value);
  return v;
}

JsonValue to_config_json(const JobConfig& job) {
  JsonValue v = JsonValue::object();
  v.set("schema", "hpcos-config-bsp-job/1");
  v.set("nodes", static_cast<std::int64_t>(job.nodes));
  v.set("ranks_per_node", job.ranks_per_node);
  v.set("threads_per_rank", job.threads_per_rank);
  return v;
}

JsonValue to_config_json(const noise::Countermeasures& cm) {
  JsonValue v = JsonValue::object();
  v.set("schema", "hpcos-config-countermeasures/1");
  v.set("bind_daemons", cm.bind_daemons);
  v.set("bind_kworkers", cm.bind_kworkers);
  v.set("bind_blkmq", cm.bind_blkmq);
  v.set("stop_pmu_reads", cm.stop_pmu_reads);
  v.set("suppress_global_tlbi", cm.suppress_global_tlbi);
  return v;
}

JsonValue to_config_json(const MemEnvModel& mem) {
  JsonValue v = JsonValue::object();
  v.set("schema", "hpcos-config-mem-env/1");
  v.set("base_page_bytes", hw::bytes(mem.base_page));
  v.set("large_page_bytes", hw::bytes(mem.large_page));
  v.set("large_page_coverage", mem.large_page_coverage);
  v.set("heap", mem.heap == os::HeapBehavior::kCached ? "cached"
                                                      : "release-to-os");
  v.set("fault_base_ns", ns_of(mem.fault_base));
  v.set("fault_large_ns", ns_of(mem.fault_large));
  v.set("churn_fixed_ns", ns_of(mem.churn_fixed));
  v.set("churn_per_mib_ns", ns_of(mem.churn_per_mib));
  v.set("churn_sigma", mem.churn_sigma);
  v.set("churn_max_factor", mem.churn_max_factor);
  v.set("os_overhead", mem.os_overhead);
  return v;
}

JsonValue to_config_json(const noise::AnalyticNoiseProfile& profile) {
  JsonValue v = JsonValue::object();
  v.set("schema", "hpcos-config-noise-profile/1");
  v.set("name", profile.name);
  v.set("base_jitter_mean", profile.base_jitter_mean);
  v.set("base_jitter_sd", profile.base_jitter_sd);
  JsonValue sources = JsonValue::array();
  for (const noise::NoiseSourceSpec& s : profile.sources) {
    JsonValue spec = JsonValue::object();
    spec.set("name", s.name);
    spec.set("kind", noise::to_string(s.kind));
    spec.set("scope", scope_name(s.scope));
    spec.set("mean_interval_ns", ns_of(s.mean_interval));
    spec.set("duration", to_json(s.duration));
    spec.set("node_fraction", s.node_fraction);
    spec.set("instances", s.instances);
    sources.push_back(std::move(spec));
  }
  v.set("sources", std::move(sources));
  return v;
}

JsonValue to_config_json(const OsEnvironment& env) {
  JsonValue v = JsonValue::object();
  v.set("schema", "hpcos-config-os-environment/1");
  v.set("name", env.name);
  v.set("os", to_string(env.os));
  v.set("profile", to_config_json(env.profile));
  v.set("mem", to_config_json(env.mem));
  JsonValue fabric = JsonValue::object();
  fabric.set("sw_overhead_ns", ns_of(env.fabric.sw_overhead));
  fabric.set("link_latency_ns", ns_of(env.fabric.link_latency));
  fabric.set("bandwidth_bytes_per_sec", env.fabric.bandwidth_bytes_per_sec);
  fabric.set("injection_overhead_ns", ns_of(env.fabric.injection_overhead));
  v.set("fabric", std::move(fabric));
  v.set("rdma_path", net::to_string(env.rdma_path));
  return v;
}

JsonValue bench_plan_config_json(const std::string& workload,
                                 const OsEnvironment& env,
                                 const JobConfig& job, Seed seed) {
  JsonValue v = JsonValue::object();
  v.set("schema", "hpcos-config-bench-plan/1");
  v.set("workload", workload);
  v.set("environment", to_config_json(env));
  v.set("job", to_config_json(job));
  v.set("seed", seed.value);
  return v;
}

}  // namespace hpcos::cluster
