// Job launcher: the batch-system integration of §4.1 / §5.1.
//
// What Fugaku's TCS + Docker do at job start, reproduced against a
// SimNode:
//  * containerization (§4.1.1): an application cpuset+memory cgroup and a
//    system cgroup — on Linux nodes; on a multi-kernel node the LWK *is*
//    the "plugin replacement for the cgroup facility" (§5.1) and no
//    cgroup setup is needed;
//  * NUMA-aware placement (§4.1.4): MPI ranks are bound to CMGs
//    round-robin, each rank receiving a disjoint slice of its domain's
//    cores — users never touch the binding interfaces themselves;
//  * memory policy (§4.1.3): processes are created with the runtime's
//    large-page preference, pre-allocation/demand choice and caching
//    allocator, as the environment variables would select.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/node.h"
#include "oskernel/process.h"

namespace hpcos::cluster {

struct LaunchSpec {
  int ranks = 4;
  int threads_per_rank = 12;
  bool containerized = true;  // Docker-style cgroup setup (Linux nodes)
  hw::PageSize preferred_page_size = hw::PageSize::k2M;
  os::PagingPolicy paging = os::PagingPolicy::kPrePopulate;
  os::HeapBehavior heap = os::HeapBehavior::kCached;
  // Application memory cgroup limit; 0 = unlimited.
  std::uint64_t memory_limit_bytes = 0;
};

struct RankPlacement {
  int rank = 0;
  os::Pid pid = os::kInvalidPid;
  hw::NumaId numa = hw::kInvalidNuma;
  hw::CpuSet cores;  // the rank's dedicated core slice
};

struct LaunchedJob {
  std::vector<RankPlacement> ranks;
  bool used_cgroups = false;
  static constexpr const char* kAppCpuset = "job-app";
  static constexpr const char* kSystemCpuset = "job-system";
  static constexpr const char* kAppMemcg = "job-app-mem";
};

class JobLauncher {
 public:
  explicit JobLauncher(SimNode& node) : node_(node) {}

  // Prologue: cgroup setup (Linux) + rank processes with NUMA binding.
  // Fails (SimError) when ranks cannot be placed (more ranks than cores).
  LaunchedJob launch(const LaunchSpec& spec);

  // Start a rank's main thread inside its placement.
  os::ThreadId spawn_rank_thread(const LaunchedJob& job, int rank,
                                 std::unique_ptr<os::ThreadBody> body,
                                 const std::string& name);

 private:
  SimNode& node_;
};

}  // namespace hpcos::cluster
