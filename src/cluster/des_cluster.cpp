#include "cluster/des_cluster.h"

#include "common/check.h"

namespace hpcos::cluster {

DesCluster::DesCluster(int num_nodes, const hw::PlatformConfig& platform,
                       const linuxk::LinuxConfig& linux_config,
                       Options options) {
  build(num_nodes, platform, linux_config, nullptr, options);
}

DesCluster::DesCluster(int num_nodes, const hw::PlatformConfig& platform,
                       const linuxk::LinuxConfig& linux_config,
                       const mck::McKernelConfig& lwk_config,
                       Options options) {
  build(num_nodes, platform, linux_config, &lwk_config, options);
}

void DesCluster::build(int num_nodes, const hw::PlatformConfig& platform,
                       const linuxk::LinuxConfig& linux_config,
                       const mck::McKernelConfig* lwk_config,
                       Options options) {
  HPCOS_CHECK(num_nodes >= 1);
  nodes_.reserve(static_cast<std::size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    SimNodeOptions node_opts;
    node_opts.seed =
        Seed{options.seed.value + 0x9E3779B97F4A7C15ull *
                                      static_cast<std::uint64_t>(n + 1)};
    node_opts.trace_capacity = options.trace_capacity;
    node_opts.shared_simulator = &sim_;
    if (options.multikernel || lwk_config != nullptr) {
      nodes_.push_back(SimNode::make_multikernel_node(
          platform, linux_config,
          lwk_config != nullptr ? *lwk_config
                                : mck::McKernelConfig::defaults(),
          node_opts));
    } else {
      nodes_.push_back(
          SimNode::make_linux_node(platform, linux_config, node_opts));
    }
  }
}

std::vector<std::vector<noise::FwqTrace>> DesCluster::run_fwq_all(
    noise::FwqConfig config) {
  // Spawn all FWQ threads first (they begin at the same simulated time on
  // every node, like the MPI-launched FWQ), then drive the shared clock
  // until every thread everywhere has finished.
  struct PerNode {
    std::vector<const noise::FwqThread*> bodies;
  };
  std::vector<PerNode> spawned(nodes_.size());

  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    os::NodeKernel& kernel = nodes_[n]->app_kernel();
    for (hw::CoreId core :
         nodes_[n]->topology().application_cores().to_vector()) {
      auto body = std::make_unique<noise::FwqThread>(config);
      spawned[n].bodies.push_back(body.get());
      os::SpawnAttrs attrs;
      attrs.name = "fwq-" + std::to_string(n) + "-" + std::to_string(core);
      attrs.affinity = hw::CpuSet::of(
          static_cast<std::size_t>(nodes_[n]->topology().logical_cores()),
          {core});
      kernel.spawn(std::move(body), std::move(attrs));
    }
  }

  auto all_done = [&] {
    for (const auto& pn : spawned) {
      for (const noise::FwqThread* b : pn.bodies) {
        if (!b->finished()) return false;
      }
    }
    return true;
  };
  while (!all_done()) {
    const bool progressed = sim_.step();
    HPCOS_CHECK_MSG(progressed,
                    "cluster FWQ deadlock: event queue drained early");
  }

  std::vector<std::vector<noise::FwqTrace>> out(nodes_.size());
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    for (const noise::FwqThread* b : spawned[n].bodies) {
      out[n].push_back(b->trace());
    }
  }
  return out;
}

}  // namespace hpcos::cluster
