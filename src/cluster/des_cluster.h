// Multi-node DES cluster: several SimNodes on one shared clock.
//
// §6.3: "we extended FWQ to run on an arbitrary number of nodes (using
// MPI) and measure OS noise on all CPU cores simultaneously". This class
// is that harness for the DES side: N fully-modeled nodes (Linux-only or
// multi-kernel) advance in one simulator, FWQ runs on every application
// core of every node at once, and per-node traces come back for the
// aggregate statistics. Node seeds derive from a base seed, so each node's
// noise is independent but the whole cluster run is reproducible.
#pragma once

#include <memory>
#include <vector>

#include "cluster/node.h"
#include "noise/fwq.h"

namespace hpcos::cluster {

class DesCluster {
 public:
  struct Options {
    Seed seed{0xC1D5};
    bool multikernel = false;
    std::size_t trace_capacity = 0;
  };

  // All nodes share `platform` hardware and the given kernel configs.
  DesCluster(int num_nodes, const hw::PlatformConfig& platform,
             const linuxk::LinuxConfig& linux_config, Options options);
  DesCluster(int num_nodes, const hw::PlatformConfig& platform,
             const linuxk::LinuxConfig& linux_config,
             const mck::McKernelConfig& lwk_config, Options options);

  int size() const { return static_cast<int>(nodes_.size()); }
  sim::Simulator& simulator() { return sim_; }
  SimNode& node(int index) { return *nodes_.at(static_cast<std::size_t>(index)); }

  // Run FWQ on every application core of every node simultaneously;
  // result[n] holds node n's per-core traces.
  std::vector<std::vector<noise::FwqTrace>> run_fwq_all(
      noise::FwqConfig config);

 private:
  void build(int num_nodes, const hw::PlatformConfig& platform,
             const linuxk::LinuxConfig& linux_config,
             const mck::McKernelConfig* lwk_config, Options options);

  sim::Simulator sim_;
  std::vector<std::unique_ptr<SimNode>> nodes_;
};

}  // namespace hpcos::cluster
