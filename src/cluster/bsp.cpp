#include "cluster/bsp.h"

#include <algorithm>

#include "common/check.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "noise/metrics.h"

namespace hpcos::cluster {

double RunResult::performance() const {
  HPCOS_CHECK(!total.is_zero());
  return static_cast<double>(iteration_times.size()) / total.to_sec();
}

SimTime RunResult::step_time(int step, int num_steps) const {
  HPCOS_CHECK(num_steps >= 1 && step >= 0 && step < num_steps);
  const std::size_t per_step = iteration_times.size() /
                               static_cast<std::size_t>(num_steps);
  HPCOS_CHECK_MSG(per_step > 0, "fewer iterations than steps");
  SimTime t = step == 0 ? init_time : SimTime::zero();
  const std::size_t begin = static_cast<std::size_t>(step) * per_step;
  const std::size_t end = step == num_steps - 1 ? iteration_times.size()
                                                : begin + per_step;
  for (std::size_t i = begin; i < end; ++i) t += iteration_times[i];
  return t;
}

BspEngine::BspEngine(const OsEnvironment& env, JobConfig job, Seed seed)
    : env_(env),
      job_(job),
      seed_(seed),
      collectives_(net::Fabric(env.fabric)),
      rdma_(env.rdma) {
  HPCOS_CHECK(job_.nodes >= 1);
  HPCOS_CHECK(job_.ranks_per_node >= 1 && job_.threads_per_rank >= 1);
}

void BspEngine::set_trace(sim::TraceBuffer* trace, hw::CoreId track,
                          SimTime anchor) {
  trace_ = trace;
  trace_track_ = track;
  trace_anchor_ = anchor;
}

void BspEngine::set_series(obs::ts::SeriesSet* series, std::string prefix,
                           SimTime resolution, std::size_t capacity) {
  series_ = series;
  series_prefix_ = std::move(prefix);
  series_resolution_ = resolution;
  series_capacity_ = capacity;
}

RunResult BspEngine::run(const Workload& workload) {
  RunResult r;
  r.workload = workload.name();
  r.environment = env_.name;
  r.job = job_;

  RngStream rng(seed_, 0xB59);
  MachineNoiseSampler noise(env_.profile, job_.nodes,
                            job_.ranks_per_node * job_.threads_per_rank,
                            rng.split(1));
  const std::int64_t ranks = job_.total_ranks();

  // Phase span recording. The engine is analytic — there is no simulator
  // clock — so phases are laid out back to back on a virtual timeline
  // starting at the anchor (zero by default; a DES node's wall clock when
  // the caller wants the rank timeline overlaid on that node's trace),
  // which is exactly the per-rank time composition the result reports.
  sim::TraceBuffer* tb = trace_;
  const bool tracing = tb != nullptr && tb->enabled();
  SimTime cursor = trace_anchor_;
  auto span = [&](std::uint64_t parent, SimTime at, SimTime dur,
                  std::string label,
                  sim::TraceCategory cat) -> std::uint64_t {
    const std::uint64_t id = tb->new_span();
    tb->record(sim::TraceRecord{.time = at,
                                .core = trace_track_,
                                .category = cat,
                                .duration = dur,
                                .label = std::move(label),
                                .span = id,
                                .parent = parent});
    return id;
  };

  // ---- init phase ----
  const InitWork init = workload.init_work(job_, env_);
  const SimTime init_fault = env_.fault_in(init.touch_bytes);
  SimTime init_rdma = SimTime::zero();
  if (init.rdma_registrations > 0) {
    // Every rank performs its registrations serially; the job then
    // barriers, so init completes at the slowest rank's pace. The tail of
    // a single registration is what differs across paths (§5.1).
    const SimTime median =
        rdma_.median_cost(env_.rdma_path, init.rdma_bytes_each);
    const SimTime rank_median = median * init.rdma_registrations;
    const SimTime worst_single = rdma_.sample_worst_of(
        env_.rdma_path, init.rdma_bytes_each,
        static_cast<std::uint64_t>(ranks) *
            static_cast<std::uint64_t>(init.rdma_registrations),
        rng);
    init_rdma = rank_median + (worst_single - median);
  }
  const SimTime init_barrier = collectives_.barrier(ranks);
  const SimTime init_time =
      init.serial_setup + init_fault + init_rdma + init_barrier;
  r.init_time = init_time;
  if (tracing) {
    const std::uint64_t root = span(0, cursor, init_time, "bsp:init",
                                    sim::TraceCategory::kCollective);
    SimTime at = cursor;
    auto phase = [&](SimTime dur, const char* label,
                     sim::TraceCategory cat) {
      if (dur > SimTime::zero()) span(root, at, dur, label, cat);
      at += dur;
    };
    phase(init.serial_setup, "init:setup", sim::TraceCategory::kUser);
    phase(init_fault, "init:fault-in", sim::TraceCategory::kPageFault);
    phase(init_rdma, "init:rdma-register",
          sim::TraceCategory::kCollective);
    phase(init_barrier, "init:barrier", sim::TraceCategory::kCollective);
  }
  cursor += init_time;

  // ---- iteration loop ----
  const int iters = workload.iterations();
  r.iteration_times.reserve(static_cast<std::size_t>(iters));
  SimTime total = init_time;
  for (int it = 0; it < iters; ++it) {
    const RankWork w = workload.rank_work(it, job_, env_);

    const SimTime compute_time = w.compute.scaled(env_.tlb_compute_factor(
        w.working_set_bytes, w.mem_bound_fraction,
        w.large_page_coverage_hint));
    const SimTime fault_time = env_.fault_in(w.touch_bytes);
    SimTime tbar_time = SimTime::zero();
    if (w.thread_barriers > 0) {
      // Intra-rank OpenMP synchronization; Fugaku's runtime drives the
      // A64FX hardware barrier (§4.1.5), other platforms use a software
      // tree. Identical across the OSes of one platform — both expose the
      // device — but part of the honest time composition.
      const hw::HwBarrier barrier(env_.platform.hw_barrier);
      tbar_time =
          barrier.barrier_cost(job_.threads_per_rank) * w.thread_barriers;
    }

    // Heap churn: medians paid by everyone; the slowest rank's tail adds
    // on top (the barrier waits for it).
    SimTime churn_med = SimTime::zero();
    SimTime churn_extra = SimTime::zero();
    if (w.alloc_churn_bytes > 0) {
      churn_med = env_.churn_median(w.alloc_churn_bytes);
      noise::DurationDist churn_tail{
          .median = churn_med,
          .sigma = env_.mem.churn_sigma,
          .min = SimTime::zero(),
          .max = churn_med.scaled(env_.mem.churn_max_factor)};
      churn_extra =
          churn_tail.sample_max(static_cast<std::uint64_t>(ranks), rng) -
          churn_med;
      if (churn_extra.is_negative()) churn_extra = SimTime::zero();
    }
    const SimTime rank_time =
        compute_time + fault_time + tbar_time + churn_med;

    // Compute imbalance across ranks (application property, OS-neutral).
    SimTime imbalance_extra = SimTime::zero();
    if (w.imbalance_sigma > 0.0) {
      noise::DurationDist imb{
          .median = rank_time,
          .sigma = w.imbalance_sigma,
          .min = SimTime::zero(),
          .max = rank_time.scaled(10.0)};
      imbalance_extra =
          imb.sample_max(static_cast<std::uint64_t>(ranks), rng) - rank_time;
      if (imbalance_extra.is_negative()) imbalance_extra = SimTime::zero();
    }

    // OS noise across the machine during the busy window (Eq. 1). The
    // attributed form draws the identical sequence, so tracing on/off
    // never changes the simulated result.
    const GlobalDelaySample noise_sample =
        noise.sample_global_delay_attributed(rank_time);
    const SimTime noise_delay = noise_sample.delay;

    // Communication.
    SimTime allreduce_time = SimTime::zero();
    SimTime halo_time = SimTime::zero();
    SimTime barrier_time = SimTime::zero();
    if (w.allreduces > 0) {
      allreduce_time =
          collectives_.allreduce(ranks, w.allreduce_bytes) * w.allreduces;
    }
    if (w.halo_neighbors > 0) {
      halo_time = net::Fabric(env_.fabric)
                      .halo_exchange(w.halo_bytes, w.halo_neighbors);
    }
    if (w.barriers > 0) {
      barrier_time = collectives_.barrier(ranks) * w.barriers;
    }
    const SimTime comm = allreduce_time + halo_time + barrier_time;

    const SimTime iter_time =
        rank_time + churn_extra + imbalance_extra + noise_delay + comm;
    r.iteration_times.push_back(iter_time);
    total += iter_time;

    if (series_ != nullptr) {
      // Phase durations at the iteration's start on the run timeline.
      const SimTime at = cursor;
      auto rec = [&](const char* name, SimTime dur) {
        series_
            ->series(series_prefix_ + name, series_resolution_,
                     series_capacity_)
            ->record(at, dur.to_us());
      };
      rec("compute_us", compute_time);
      rec("fault_in_us", fault_time);
      rec("churn_us", churn_med + churn_extra);
      rec("imbalance_us", imbalance_extra);
      rec("noise_wait_us", noise_delay);
      rec("comm_us", comm);
      rec("iteration_us", iter_time);
    }

    if (tracing) {
      const std::uint64_t root = span(0, cursor, iter_time,
                                      "bsp:iteration",
                                      sim::TraceCategory::kCollective);
      SimTime at = cursor;
      auto phase = [&](SimTime dur, const char* label,
                       sim::TraceCategory cat) -> std::uint64_t {
        std::uint64_t id = 0;
        if (dur > SimTime::zero()) id = span(root, at, dur, label, cat);
        at += dur;
        return id;
      };
      phase(compute_time, "bsp:compute", sim::TraceCategory::kUser);
      phase(fault_time, "bsp:fault-in", sim::TraceCategory::kPageFault);
      phase(tbar_time, "bsp:thread-barrier", sim::TraceCategory::kUser);
      phase(churn_med, "bsp:heap-churn", sim::TraceCategory::kUser);
      phase(churn_extra, "bsp:churn-tail", sim::TraceCategory::kUser);
      phase(imbalance_extra, "bsp:imbalance", sim::TraceCategory::kUser);
      const SimTime wait_at = at;
      const std::uint64_t wait = phase(noise_delay, "bsp:noise-wait",
                                       sim::TraceCategory::kScheduler);
      if (wait != 0 && !noise_sample.source.empty()) {
        // Tag the wait with its dominant machine-noise source: the
        // straggler analysis reads this child to answer "who stalled the
        // barrier this iteration". The event duration is the worst hit;
        // the remainder of the wait is the max-of-N jitter floor.
        const SimTime event = noise_sample.worst_event.is_zero()
                                  ? noise_delay
                                  : noise_sample.worst_event;
        span(wait, wait_at, event, "noise:" + noise_sample.source,
             noise::trace_category(noise_sample.kind));
      }
      const SimTime ar_at = at;
      const std::uint64_t ar = phase(allreduce_time, "bsp:allreduce",
                                     sim::TraceCategory::kCollective);
      if (ar != 0) {
        const auto split =
            collectives_.allreduce_phases(ranks, w.allreduce_bytes);
        const SimTime rs = split.reduce_scatter * w.allreduces;
        span(ar, ar_at, rs, "allreduce:reduce-scatter",
             sim::TraceCategory::kCollective);
        span(ar, ar_at + rs, allreduce_time - rs, "allreduce:allgather",
             sim::TraceCategory::kCollective);
      }
      phase(halo_time, "bsp:halo", sim::TraceCategory::kCollective);
      phase(barrier_time, "bsp:barrier", sim::TraceCategory::kCollective);
    }
    cursor += iter_time;
  }
  r.total = total;
  return r;
}

double BspEngine::analytic_noise_delay(SimTime sync_interval) const {
  std::vector<noise::NoiseGroup> groups;
  for (const auto& s : env_.profile.sources) {
    // Per-thread occurrence interval of the source.
    SimTime interval = s.mean_interval;
    if (s.scope == noise::SourceScope::kPerNodeRandomCore) {
      interval = interval * (job_.ranks_per_node * job_.threads_per_rank);
    }
    if (s.node_fraction < 1.0) {
      const double active =
          static_cast<double>(job_.nodes) * s.node_fraction;
      if (active < 1.0) continue;
      // Concentrated on a subset: per-thread interval within that subset.
    }
    groups.push_back(noise::NoiseGroup{.length = s.duration.mean(),
                                       .interval = interval});
  }
  return noise::bsp_noise_delay(
      groups, sync_interval,
      static_cast<std::uint64_t>(job_.total_threads()));
}

RelativeResult relative_performance(const Workload& workload,
                                    const OsEnvironment& baseline,
                                    const OsEnvironment& candidate,
                                    JobConfig job, int trials, Seed seed,
                                    std::size_t threads) {
  HPCOS_CHECK(trials >= 1);
  // Each trial derives its own seed and writes its ratio into its own
  // slot; the workload and environments are shared read-only. Callers
  // like run_plan invoke this from inside their own parallel_for: the
  // trials then run as a nested task group on the work-stealing
  // scheduler, and the rank-ordered fold below keeps the result
  // bit-identical for any (outer, inner) host thread combination.
  std::vector<double> ratios(static_cast<std::size_t>(trials), 0.0);
  parallel_for(
      static_cast<std::size_t>(trials),
      [&](std::size_t t) {
        const Seed s{seed.value + static_cast<std::uint64_t>(t) * 0x9E37ull};
        BspEngine base_engine(baseline, job, s);
        BspEngine cand_engine(candidate, job, s);
        const RunResult b = base_engine.run(workload);
        const RunResult c = cand_engine.run(workload);
        ratios[t] = b.total.ratio(c.total);  // time ratio = perf ratio
      },
      threads);
  OnlineStats st;
  for (double v : ratios) st.add(v);  // trial order: thread-count invariant
  return RelativeResult{.mean_ratio = st.mean(), .stddev_ratio = st.stddev()};
}

}  // namespace hpcos::cluster
