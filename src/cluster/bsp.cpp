#include "cluster/bsp.h"

#include <algorithm>

#include "common/check.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "noise/metrics.h"

namespace hpcos::cluster {

double RunResult::performance() const {
  HPCOS_CHECK(!total.is_zero());
  return static_cast<double>(iteration_times.size()) / total.to_sec();
}

SimTime RunResult::step_time(int step, int num_steps) const {
  HPCOS_CHECK(num_steps >= 1 && step >= 0 && step < num_steps);
  const std::size_t per_step = iteration_times.size() /
                               static_cast<std::size_t>(num_steps);
  HPCOS_CHECK_MSG(per_step > 0, "fewer iterations than steps");
  SimTime t = step == 0 ? init_time : SimTime::zero();
  const std::size_t begin = static_cast<std::size_t>(step) * per_step;
  const std::size_t end = step == num_steps - 1 ? iteration_times.size()
                                                : begin + per_step;
  for (std::size_t i = begin; i < end; ++i) t += iteration_times[i];
  return t;
}

BspEngine::BspEngine(const OsEnvironment& env, JobConfig job, Seed seed)
    : env_(env),
      job_(job),
      seed_(seed),
      collectives_(net::Fabric(env.fabric)),
      rdma_(env.rdma) {
  HPCOS_CHECK(job_.nodes >= 1);
  HPCOS_CHECK(job_.ranks_per_node >= 1 && job_.threads_per_rank >= 1);
}

RunResult BspEngine::run(const Workload& workload) {
  RunResult r;
  r.workload = workload.name();
  r.environment = env_.name;
  r.job = job_;

  RngStream rng(seed_, 0xB59);
  MachineNoiseSampler noise(env_.profile, job_.nodes,
                            job_.ranks_per_node * job_.threads_per_rank,
                            rng.split(1));
  const std::int64_t ranks = job_.total_ranks();

  // ---- init phase ----
  const InitWork init = workload.init_work(job_, env_);
  SimTime init_time = init.serial_setup + env_.fault_in(init.touch_bytes);
  if (init.rdma_registrations > 0) {
    // Every rank performs its registrations serially; the job then
    // barriers, so init completes at the slowest rank's pace. The tail of
    // a single registration is what differs across paths (§5.1).
    const SimTime median =
        rdma_.median_cost(env_.rdma_path, init.rdma_bytes_each);
    const SimTime rank_median = median * init.rdma_registrations;
    const SimTime worst_single = rdma_.sample_worst_of(
        env_.rdma_path, init.rdma_bytes_each,
        static_cast<std::uint64_t>(ranks) *
            static_cast<std::uint64_t>(init.rdma_registrations),
        rng);
    init_time += rank_median + (worst_single - median);
  }
  init_time += collectives_.barrier(ranks);
  r.init_time = init_time;

  // ---- iteration loop ----
  const int iters = workload.iterations();
  r.iteration_times.reserve(static_cast<std::size_t>(iters));
  SimTime total = init_time;
  for (int it = 0; it < iters; ++it) {
    const RankWork w = workload.rank_work(it, job_, env_);

    SimTime rank_time = w.compute.scaled(env_.tlb_compute_factor(
        w.working_set_bytes, w.mem_bound_fraction,
        w.large_page_coverage_hint));
    rank_time += env_.fault_in(w.touch_bytes);
    if (w.thread_barriers > 0) {
      // Intra-rank OpenMP synchronization; Fugaku's runtime drives the
      // A64FX hardware barrier (§4.1.5), other platforms use a software
      // tree. Identical across the OSes of one platform — both expose the
      // device — but part of the honest time composition.
      const hw::HwBarrier barrier(env_.platform.hw_barrier);
      rank_time +=
          barrier.barrier_cost(job_.threads_per_rank) * w.thread_barriers;
    }

    // Heap churn: medians paid by everyone; the slowest rank's tail adds
    // on top (the barrier waits for it).
    SimTime churn_extra = SimTime::zero();
    if (w.alloc_churn_bytes > 0) {
      const SimTime med = env_.churn_median(w.alloc_churn_bytes);
      rank_time += med;
      noise::DurationDist churn_tail{
          .median = med,
          .sigma = env_.mem.churn_sigma,
          .min = SimTime::zero(),
          .max = med.scaled(env_.mem.churn_max_factor)};
      churn_extra =
          churn_tail.sample_max(static_cast<std::uint64_t>(ranks), rng) -
          med;
      if (churn_extra.is_negative()) churn_extra = SimTime::zero();
    }

    // Compute imbalance across ranks (application property, OS-neutral).
    SimTime imbalance_extra = SimTime::zero();
    if (w.imbalance_sigma > 0.0) {
      noise::DurationDist imb{
          .median = rank_time,
          .sigma = w.imbalance_sigma,
          .min = SimTime::zero(),
          .max = rank_time.scaled(10.0)};
      imbalance_extra =
          imb.sample_max(static_cast<std::uint64_t>(ranks), rng) - rank_time;
      if (imbalance_extra.is_negative()) imbalance_extra = SimTime::zero();
    }

    // OS noise across the machine during the busy window (Eq. 1).
    const SimTime noise_delay = noise.sample_global_delay(rank_time);

    // Communication.
    SimTime comm = SimTime::zero();
    if (w.allreduces > 0) {
      comm += collectives_.allreduce(ranks, w.allreduce_bytes) *
              w.allreduces;
    }
    if (w.halo_neighbors > 0) {
      comm += net::Fabric(env_.fabric)
                  .halo_exchange(w.halo_bytes, w.halo_neighbors);
    }
    if (w.barriers > 0) {
      comm += collectives_.barrier(ranks) * w.barriers;
    }

    const SimTime iter_time =
        rank_time + churn_extra + imbalance_extra + noise_delay + comm;
    r.iteration_times.push_back(iter_time);
    total += iter_time;
  }
  r.total = total;
  return r;
}

double BspEngine::analytic_noise_delay(SimTime sync_interval) const {
  std::vector<noise::NoiseGroup> groups;
  for (const auto& s : env_.profile.sources) {
    // Per-thread occurrence interval of the source.
    SimTime interval = s.mean_interval;
    if (s.scope == noise::SourceScope::kPerNodeRandomCore) {
      interval = interval * (job_.ranks_per_node * job_.threads_per_rank);
    }
    if (s.node_fraction < 1.0) {
      const double active =
          static_cast<double>(job_.nodes) * s.node_fraction;
      if (active < 1.0) continue;
      // Concentrated on a subset: per-thread interval within that subset.
    }
    groups.push_back(noise::NoiseGroup{.length = s.duration.mean(),
                                       .interval = interval});
  }
  return noise::bsp_noise_delay(
      groups, sync_interval,
      static_cast<std::uint64_t>(job_.total_threads()));
}

RelativeResult relative_performance(const Workload& workload,
                                    const OsEnvironment& baseline,
                                    const OsEnvironment& candidate,
                                    JobConfig job, int trials, Seed seed,
                                    std::size_t threads) {
  HPCOS_CHECK(trials >= 1);
  // Each trial derives its own seed and writes its ratio into its own
  // slot; the workload and environments are shared read-only.
  std::vector<double> ratios(static_cast<std::size_t>(trials), 0.0);
  parallel_for(
      static_cast<std::size_t>(trials),
      [&](std::size_t t) {
        const Seed s{seed.value + static_cast<std::uint64_t>(t) * 0x9E37ull};
        BspEngine base_engine(baseline, job, s);
        BspEngine cand_engine(candidate, job, s);
        const RunResult b = base_engine.run(workload);
        const RunResult c = cand_engine.run(workload);
        ratios[t] = b.total.ratio(c.total);  // time ratio = perf ratio
      },
      threads);
  OnlineStats st;
  for (double v : ratios) st.add(v);  // trial order: thread-count invariant
  return RelativeResult{.mean_ratio = st.mean(), .stddev_ratio = st.stddev()};
}

}  // namespace hpcos::cluster
