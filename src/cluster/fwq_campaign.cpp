#include "cluster/fwq_campaign.h"

#include <algorithm>

#include "common/check.h"

namespace hpcos::cluster {

FwqCampaignResult run_fwq_campaign(const noise::AnalyticNoiseProfile& profile,
                                   const FwqCampaignConfig& config) {
  HPCOS_CHECK(config.nodes >= 1 && config.app_cores >= 1);
  FwqCampaignResult result;

  const double quantum_us = config.work_quantum.to_us();
  const auto iters_per_core = static_cast<std::uint64_t>(
      config.duration_per_core.ratio(config.work_quantum));
  const std::uint64_t iters_per_node =
      iters_per_core * static_cast<std::uint64_t>(config.app_cores);

  SimTime global_min = SimTime::max();
  SimTime global_max = SimTime::zero();
  double overhead_sum_us = 0.0;  // sum of (T_i - quantum) across everything

  RngStream root(config.seed, 0xF80);
  std::vector<double> node_max_us;
  node_max_us.reserve(static_cast<std::size_t>(config.nodes));

  for (std::int64_t n = 0; n < config.nodes; ++n) {
    RngStream node_rng = root.split(static_cast<std::uint64_t>(n));
    noise::AnalyticNodeSampler sampler(profile, config.app_cores,
                                       node_rng.split(0));
    RngStream rng = node_rng.split(1);

    double node_max = quantum_us;
    std::uint64_t hit_iterations = 0;

    // Materialize each noise hit as one (or part of one) iteration.
    for (const auto& s : sampler.active_sources()) {
      double per_core_interval_ns =
          static_cast<double>(s.mean_interval.count_ns());
      double exposed_cores = config.app_cores;
      if (s.scope == noise::SourceScope::kPerNodeRandomCore) {
        exposed_cores = 1.0;  // node process, one core per hit
      }
      const double hits_mean =
          static_cast<double>(config.duration_per_core.count_ns()) /
          per_core_interval_ns * exposed_cores;
      const std::uint64_t k = rng.poisson(hits_mean);
      // Cap the individually materialized hits; beyond the cap, fold the
      // remainder into bulk statistics via the distribution mean plus one
      // max draw (tail preserved, cost bounded).
      const std::uint64_t materialize =
          std::min<std::uint64_t>(k, config.max_materialized_hits);
      for (std::uint64_t i = 0; i < materialize; ++i) {
        const double t_us = quantum_us + s.duration.sample(rng).to_us();
        result.cdf.add(t_us);
        overhead_sum_us += t_us - quantum_us;
        node_max = std::max(node_max, t_us);
        ++hit_iterations;
      }
      if (k > materialize) {
        const std::uint64_t rest = k - materialize;
        const double mean_us = s.duration.mean().to_us();
        result.cdf.add_n(quantum_us + mean_us, rest);
        overhead_sum_us += mean_us * static_cast<double>(rest);
        const double tail_us =
            quantum_us + s.duration.sample_max(rest, rng).to_us();
        node_max = std::max(node_max, tail_us);
        hit_iterations += rest;
      }
    }

    // Jitter floor for the unhit bulk.
    const std::uint64_t unhit =
        iters_per_node > hit_iterations ? iters_per_node - hit_iterations : 0;
    if (unhit > 0) {
      const int reps = std::max(1, config.floor_samples_per_node);
      const std::uint64_t per_rep = unhit / static_cast<std::uint64_t>(reps);
      std::uint64_t accounted = 0;
      for (int i = 0; i < reps; ++i) {
        const std::uint64_t weight =
            (i == reps - 1) ? unhit - accounted : per_rep;
        if (weight == 0) continue;
        const double t_us =
            sampler.sample_floor_iteration(config.work_quantum).to_us();
        result.cdf.add_n(t_us, weight);
        overhead_sum_us +=
            (t_us - quantum_us) * static_cast<double>(weight);
        node_max = std::max(node_max, t_us);
        global_min = std::min(global_min, SimTime::from_us(t_us));
        accounted += weight;
      }
    } else {
      global_min = std::min(global_min, config.work_quantum);
    }

    global_max = std::max(global_max, SimTime::from_us(node_max));
    node_max_us.push_back(node_max);
    result.total_iterations += iters_per_node;
  }

  // Worst-N node selection (what the paper persists to the PFS).
  const auto keep = std::min<std::size_t>(
      static_cast<std::size_t>(config.worst_nodes_to_keep),
      node_max_us.size());
  std::partial_sort(node_max_us.begin(),
                    node_max_us.begin() + static_cast<std::ptrdiff_t>(keep),
                    node_max_us.end(), std::greater<double>());
  node_max_us.resize(keep);
  result.worst_node_max_us = std::move(node_max_us);

  result.stats.t_min = global_min == SimTime::max() ? config.work_quantum
                                                    : global_min;
  result.stats.t_max = global_max;
  result.stats.max_noise_length = result.stats.t_max - result.stats.t_min;
  result.stats.samples = result.total_iterations;
  const double tmin_us = result.stats.t_min.to_us();
  result.stats.noise_rate =
      overhead_sum_us /
      (tmin_us * static_cast<double>(result.total_iterations));
  return result;
}

FwqCampaignResult fwq_result_from_traces(
    const std::vector<noise::FwqTrace>& traces) {
  FwqCampaignResult result;
  result.stats = noise::compute_noise_stats(traces);
  for (const auto& t : traces) {
    for (const SimTime it : t.iteration_times) {
      result.cdf.add(it.to_us());
      ++result.total_iterations;
    }
  }
  return result;
}

}  // namespace hpcos::cluster
