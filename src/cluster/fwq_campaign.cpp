#include "cluster/fwq_campaign.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <unordered_map>

#include "common/check.h"
#include "common/parallel.h"
#include "obs/live/counters.h"
#include "obs/prof/mem.h"
#include "obs/prof/prof.h"

namespace hpcos::cluster {
namespace {

// Accumulator for one contiguous run of nodes. Each parallel worker owns
// exactly one shard at a time and sums its nodes in rank order; shards are
// then merged in shard order, so the floating-point summation order — and
// therefore the result — is independent of the host thread count.
struct ShardAccumulator {
  ShardAccumulator(const LogHistogram& layout, std::size_t heap_capacity,
                   std::size_t attrib_slots)
      : cdf(layout),
        stolen_us(attrib_slots, 0.0),
        hit_iterations(attrib_slots, 0),
        worst_us(attrib_slots, 0.0),
        heap_capacity(heap_capacity) {
    worst.reserve(heap_capacity);
  }

  LogHistogram cdf;  // same binning as FwqCampaignResult::cdf
  double overhead_sum_us = 0.0;  // sum of (T_i - quantum) across everything
  // Per-source ledger slots: profile source index, plus one trailing slot
  // for the jitter floor. Each overhead term added to overhead_sum_us is
  // mirrored into exactly one slot, so the slot totals reconcile with the
  // campaign noise_rate up to fp reassociation.
  std::vector<double> stolen_us;
  std::vector<std::uint64_t> hit_iterations;
  std::vector<double> worst_us;
  SimTime min_time = SimTime::max();
  SimTime max_time = SimTime::zero();
  std::uint64_t iterations = 0;

  void attribute(std::size_t slot, double overhead_us,
                 std::uint64_t iterations_hit) {
    stolen_us[slot] += overhead_us;
    hit_iterations[slot] += iterations_hit;
  }
  void attribute_worst(std::size_t slot, double overhead_us) {
    worst_us[slot] = std::max(worst_us[slot], overhead_us);
  }

  // Bounded worst-node selection: a min-heap of the K largest per-node
  // maxima seen by this shard. Replaces the old O(nodes) campaign-wide
  // buffer; the global worst-N is selected from the shard heaps at merge
  // time. Push/evict counts fold into the registry during the serial
  // merge (the heap itself is shard-local, so no synchronization).
  std::size_t heap_capacity;
  std::vector<double> worst;  // min-heap (std::greater comparator)
  std::uint64_t topk_pushes = 0;
  std::uint64_t topk_evictions = 0;

  // Optional streaming timeline, accumulated shard-locally like the
  // ledger slots and merged in shard order.
  bool timeline = false;
  std::vector<obs::ts::TimeSeries> series;    // per ledger slot
  std::vector<QuantileSketch> sketches;       // per ledger slot
  obs::ts::NodeTimeGrid grid;

  void enable_timeline(const FwqCampaignConfig& config, SimTime resolution,
                       std::size_t slots) {
    timeline = true;
    series.reserve(slots);
    sketches.reserve(slots);
    for (std::size_t i = 0; i < slots; ++i) {
      series.emplace_back(resolution, config.timeline_buckets);
      sketches.emplace_back(config.sketch_relative_error);
    }
    grid = obs::ts::NodeTimeGrid(config.nodes, config.duration_per_core,
                                 config.heatmap_rows, config.heatmap_cols);
  }

  // `weight` iterations lost `overhead_us` each at virtual time t on
  // `node`. The series sum adds the same overhead * weight products as the
  // ledger's attribute(), so per-slot totals reconcile.
  void timeline_record(std::size_t slot, std::int64_t node, SimTime t,
                       double overhead_us, std::uint64_t weight) {
    if (!timeline || weight == 0) return;
    series[slot].record_n(t, overhead_us, weight);
    sketches[slot].add(overhead_us > 0.0 ? overhead_us : 0.0, weight);
    grid.add(node, t, overhead_us * static_cast<double>(weight));
  }

  void keep_worst(double node_max) {
    ++topk_pushes;
    if (heap_capacity == 0) return;
    if (worst.size() < heap_capacity) {
      worst.push_back(node_max);
      std::push_heap(worst.begin(), worst.end(), std::greater<double>());
      return;
    }
    ++topk_evictions;  // one value (incoming or previous min) is dropped
    if (node_max <= worst.front()) return;
    std::pop_heap(worst.begin(), worst.end(), std::greater<double>());
    worst.back() = node_max;
    std::push_heap(worst.begin(), worst.end(), std::greater<double>());
  }
};

void simulate_node(const noise::AnalyticNoiseProfile& profile,
                   const FwqCampaignConfig& config,
                   std::uint64_t iters_per_node,
                   const std::unordered_map<std::string, std::size_t>&
                       source_slot,
                   std::int64_t node, RngStream node_rng,
                   ShardAccumulator& acc) {
  const double quantum_us = config.work_quantum.to_us();
  const std::size_t floor_slot = acc.stolen_us.size() - 1;
  noise::AnalyticNodeSampler sampler(profile, config.app_cores,
                                     node_rng.split(0));
  RngStream rng = node_rng.split(1);
  // Timeline timestamps draw from a dedicated substream: enabling the
  // timeline must not shift any draw in the sampler/rng sequences above
  // (the committed bench baselines depend on them).
  RngStream trng = node_rng.split(2);
  const bool tl = acc.timeline;
  const std::int64_t dur_ns = config.duration_per_core.count_ns();

  double node_max = quantum_us;
  std::uint64_t hit_iterations = 0;

  // Materialize each noise hit as one (or part of one) iteration.
  for (const auto& s : sampler.active_sources()) {
    const std::size_t slot = source_slot.at(s.name);
    const double interval_ns =
        static_cast<double>(s.mean_interval.count_ns());
    // Occurrence process at node scope (mean_interval is per core for
    // kPerCore, per node otherwise):
    //   kPerCore            app_cores independent processes, one core hit
    //   kPerNodeRandomCore  one process, one core hit
    //   kAllCores           one process; every core's iteration is
    //                       lengthened by the SAME occurrence, so each
    //                       arrival yields app_cores identical samples
    //                       rather than app_cores independent arrivals
    double processes = 1.0;
    std::uint64_t cores_per_hit = 1;
    switch (s.scope) {
      case noise::SourceScope::kPerCore:
        processes = static_cast<double>(config.app_cores);
        break;
      case noise::SourceScope::kPerNodeRandomCore:
        break;
      case noise::SourceScope::kAllCores:
        cores_per_hit = static_cast<std::uint64_t>(config.app_cores);
        break;
    }
    const double hits_mean =
        static_cast<double>(config.duration_per_core.count_ns()) /
        interval_ns * processes;
    const std::uint64_t k = rng.poisson(hits_mean);
    // Optional per-core jitter within a node-wide event: each core's share
    // of the shared duration sample gets an independent lognormal
    // (median 1) multiplier instead of stalling identically.
    const double jitter_sigma = config.all_cores_jitter_sigma;
    const bool jitter = s.scope == noise::SourceScope::kAllCores &&
                        jitter_sigma > 0.0 && cores_per_hit > 1;
    // Cap the individually materialized hits; beyond the cap, fold the
    // remainder into bulk statistics via the distribution mean plus one
    // max draw (tail preserved, cost bounded).
    const std::uint64_t materialize =
        std::min<std::uint64_t>(k, config.max_materialized_hits);
    for (std::uint64_t i = 0; i < materialize; ++i) {
      const double shared_us = s.duration.sample(rng).to_us();
      // One event time per hit (shared across cores for kAllCores — the
      // same occurrence lengthens every core's iteration).
      const SimTime t_event =
          tl ? trng.uniform_time(SimTime::zero(), config.duration_per_core)
             : SimTime::zero();
      if (jitter) {
        for (std::uint64_t c = 0; c < cores_per_hit; ++c) {
          const double t_us =
              quantum_us + shared_us * rng.lognormal(0.0, jitter_sigma);
          acc.cdf.add(t_us);
          acc.overhead_sum_us += t_us - quantum_us;
          acc.attribute(slot, t_us - quantum_us, 1);
          acc.attribute_worst(slot, t_us - quantum_us);
          acc.timeline_record(slot, node, t_event, t_us - quantum_us, 1);
          node_max = std::max(node_max, t_us);
        }
      } else {
        const double t_us = quantum_us + shared_us;
        acc.cdf.add_n(t_us, cores_per_hit);
        acc.overhead_sum_us +=
            (t_us - quantum_us) * static_cast<double>(cores_per_hit);
        acc.attribute(slot,
                      (t_us - quantum_us) * static_cast<double>(cores_per_hit),
                      cores_per_hit);
        acc.attribute_worst(slot, t_us - quantum_us);
        acc.timeline_record(slot, node, t_event, t_us - quantum_us,
                            cores_per_hit);
        node_max = std::max(node_max, t_us);
      }
      hit_iterations += cores_per_hit;
    }
    if (k > materialize) {
      const std::uint64_t rest = k - materialize;
      double mean_us = s.duration.mean().to_us();
      // Jittered bulk: per-core durations scale by an independent
      // lognormal factor with mean exp(sigma^2/2).
      if (jitter) mean_us *= std::exp(0.5 * jitter_sigma * jitter_sigma);
      acc.cdf.add_n(quantum_us + mean_us, rest * cores_per_hit);
      acc.overhead_sum_us +=
          mean_us * static_cast<double>(rest * cores_per_hit);
      acc.attribute(slot, mean_us * static_cast<double>(rest * cores_per_hit),
                    rest * cores_per_hit);
      if (tl) {
        // Spread the bulk across evenly-spaced midpoints (deterministic,
        // no RNG): the bulk is a rate, not individual events, so a uniform
        // spread is the faithful timeline shape.
        const std::uint64_t total = rest * cores_per_hit;
        const std::uint64_t points =
            std::min<std::uint64_t>(rest, config.timeline_buckets);
        std::uint64_t spread = 0;
        for (std::uint64_t j = 0; j < points; ++j) {
          const std::uint64_t w =
              (j == points - 1) ? total - spread : total / points;
          spread += w;
          const SimTime t = SimTime::ns(
              dur_ns * (2 * static_cast<std::int64_t>(j) + 1) /
              (2 * static_cast<std::int64_t>(points)));
          acc.timeline_record(slot, node, t, mean_us, w);
        }
      }
      double tail_sample_us = s.duration.sample_max(rest, rng).to_us();
      // The worst bulk hit's worst core also carries one jitter factor.
      if (jitter) tail_sample_us *= rng.lognormal(0.0, jitter_sigma);
      const double tail_us = quantum_us + tail_sample_us;
      acc.attribute_worst(slot, tail_sample_us);
      node_max = std::max(node_max, tail_us);
      hit_iterations += rest * cores_per_hit;
    }
  }

  // Jitter floor for the unhit bulk.
  const std::uint64_t unhit =
      iters_per_node > hit_iterations ? iters_per_node - hit_iterations : 0;
  if (unhit > 0) {
    const int reps = std::max(1, config.floor_samples_per_node);
    const std::uint64_t per_rep = unhit / static_cast<std::uint64_t>(reps);
    std::uint64_t accounted = 0;
    for (int i = 0; i < reps; ++i) {
      const std::uint64_t weight =
          (i == reps - 1) ? unhit - accounted : per_rep;
      if (weight == 0) continue;
      const double t_us =
          sampler.sample_floor_iteration(config.work_quantum).to_us();
      acc.cdf.add_n(t_us, weight);
      acc.overhead_sum_us +=
          (t_us - quantum_us) * static_cast<double>(weight);
      acc.attribute(floor_slot,
                    (t_us - quantum_us) * static_cast<double>(weight),
                    t_us > quantum_us ? weight : 0);
      if (tl) {
        // Floor reps at evenly-spaced midpoints across the window.
        const SimTime t = SimTime::ns(dur_ns * (2 * i + 1) /
                                      (2 * static_cast<std::int64_t>(reps)));
        acc.timeline_record(floor_slot, node, t, t_us - quantum_us, weight);
      }
      acc.attribute_worst(floor_slot, t_us - quantum_us);
      node_max = std::max(node_max, t_us);
      acc.min_time = std::min(acc.min_time, SimTime::from_us(t_us));
      accounted += weight;
    }
  } else {
    acc.min_time = std::min(acc.min_time, config.work_quantum);
  }

  acc.max_time = std::max(acc.max_time, SimTime::from_us(node_max));
  acc.iterations += iters_per_node;
  acc.keep_worst(node_max);
}

}  // namespace

FwqCampaignResult run_fwq_campaign(const noise::AnalyticNoiseProfile& profile,
                                   const FwqCampaignConfig& config) {
  HPCOS_CHECK(config.nodes >= 1 && config.app_cores >= 1);
  HPCOS_CHECK(config.nodes_per_shard >= 1);
  HPCOS_CHECK_MSG(config.work_quantum > SimTime::zero(),
                  "FWQ work quantum must be positive");
  const auto iters_per_core = static_cast<std::uint64_t>(
      config.duration_per_core.ratio(config.work_quantum));
  HPCOS_CHECK_MSG(iters_per_core >= 1,
                  "duration_per_core must cover at least one work_quantum; "
                  "the campaign would be empty and report zero noise");
  HPCOS_CHECK_MSG(!config.timeline || config.timeline_buckets >= 2,
                  "timeline_buckets must be at least 2");
  const std::uint64_t iters_per_node =
      iters_per_core * static_cast<std::uint64_t>(config.app_cores);

  FwqCampaignResult result;

  const auto num_shards = static_cast<std::size_t>(
      (config.nodes + config.nodes_per_shard - 1) / config.nodes_per_shard);
  // Per-shard heap bound: worst_nodes_to_keep is the smallest capacity
  // that keeps the global worst-N exact (any shard could own all N).
  const auto heap_capacity = static_cast<std::size_t>(
      config.worst_heap_capacity > 0 ? config.worst_heap_capacity
                                     : std::max(config.worst_nodes_to_keep, 0));
  // Ledger slots: one per profile source (profile order, stable whether or
  // not any node activates the source) plus a trailing jitter-floor slot.
  std::unordered_map<std::string, std::size_t> source_slot;
  for (std::size_t i = 0; i < profile.sources.size(); ++i) {
    HPCOS_CHECK_MSG(
        source_slot.emplace(profile.sources[i].name, i).second,
        "duplicate noise source name in profile");
  }
  const std::size_t attrib_slots = profile.sources.size() + 1;

  // Base series resolution: explicit, or derived so `timeline_buckets`
  // buckets cover the window without coarsening (ceil division — a bucket
  // may overhang the end, but no in-window sample can overflow the ring).
  SimTime timeline_resolution = config.timeline_resolution;
  if (config.timeline && timeline_resolution <= SimTime::zero()) {
    const auto buckets =
        static_cast<std::int64_t>(std::max<std::size_t>(
            config.timeline_buckets, 2));
    timeline_resolution = SimTime::ns(
        (config.duration_per_core.count_ns() + buckets - 1) / buckets);
  }

  std::vector<ShardAccumulator> shards;
  shards.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards.emplace_back(result.cdf,  // copy of the (empty) target layout
                        heap_capacity, attrib_slots);
    if (config.timeline) {
      shards.back().enable_timeline(config, timeline_resolution,
                                    attrib_slots);
    }
  }

  const RngStream root(config.seed, 0xF80);
  // Shard boundaries are fixed by nodes_per_shard, never by the host
  // thread count, and each shard accumulates into its own slot — so the
  // shard-ordered merge below is bit-identical whether this call runs
  // top-level or as a nested task group inside another parallel_for
  // (the work-stealing scheduler executes both without serial fallback).
  obs::prof::memory_counter("fwq.shards")
      ->add(num_shards * sizeof(ShardAccumulator));
  // Live progress feed: shards are the campaign's completion units, and
  // the iterations a shard materialized are its event count. Statistics
  // only — the counters never feed back into any result.
  if (obs::live::enabled()) obs::live::add_units_total(num_shards);
  parallel_for(
      num_shards,
      [&](std::size_t shard) {
        PROF_SCOPE("fwq.shard");
        ShardAccumulator& acc = shards[shard];
        const std::int64_t begin =
            static_cast<std::int64_t>(shard) * config.nodes_per_shard;
        const std::int64_t end =
            std::min(begin + config.nodes_per_shard, config.nodes);
        for (std::int64_t n = begin; n < end; ++n) {
          simulate_node(profile, config, iters_per_node, source_slot, n,
                        root.split(static_cast<std::uint64_t>(n)), acc);
        }
        if (obs::live::enabled()) {
          obs::live::add_units_done(1);
          obs::live::add_events(acc.iterations);
        }
      },
      config.threads);

  // Merge in rank (shard) order. The profiler scope covers the whole
  // serial tail (merge, worst-N selection, registry fold): that is the
  // campaign's Amdahl term, worth seeing as one line in the hotspot
  // table.
  PROF_SCOPE("fwq.merge");
  result.per_source.resize(attrib_slots);
  for (std::size_t i = 0; i < profile.sources.size(); ++i) {
    result.per_source[i].source = profile.sources[i].name;
    result.per_source[i].kind = profile.sources[i].kind;
    result.per_source[i].scope = profile.sources[i].scope;
  }
  result.per_source.back().source = "jitter-floor";
  result.per_source.back().kind = noise::SourceKind::kHardware;

  if (config.timeline) {
    result.timeline.enabled = true;
    result.timeline.duration = config.duration_per_core;
    result.timeline.per_source.reserve(attrib_slots);
    result.timeline.sketches.reserve(attrib_slots);
    for (std::size_t i = 0; i < attrib_slots; ++i) {
      result.timeline.per_source.emplace_back(timeline_resolution,
                                              config.timeline_buckets);
      result.timeline.sketches.emplace_back(config.sketch_relative_error);
    }
    result.timeline.heatmap = obs::ts::NodeTimeGrid(
        config.nodes, config.duration_per_core, config.heatmap_rows,
        config.heatmap_cols);
  }

  SimTime global_min = SimTime::max();
  SimTime global_max = SimTime::zero();
  double overhead_sum_us = 0.0;
  std::vector<double> worst_candidates;
  std::uint64_t topk_pushes = 0;
  std::uint64_t topk_evictions = 0;
  for (const ShardAccumulator& acc : shards) {
    result.cdf.merge(acc.cdf);
    overhead_sum_us += acc.overhead_sum_us;
    global_min = std::min(global_min, acc.min_time);
    global_max = std::max(global_max, acc.max_time);
    result.total_iterations += acc.iterations;
    for (std::size_t i = 0; i < attrib_slots; ++i) {
      result.per_source[i].stolen_us += acc.stolen_us[i];
      result.per_source[i].hit_iterations += acc.hit_iterations[i];
      result.per_source[i].worst_us =
          std::max(result.per_source[i].worst_us, acc.worst_us[i]);
    }
    worst_candidates.insert(worst_candidates.end(), acc.worst.begin(),
                            acc.worst.end());
    topk_pushes += acc.topk_pushes;
    topk_evictions += acc.topk_evictions;
    if (config.timeline) {
      for (std::size_t i = 0; i < attrib_slots; ++i) {
        result.timeline.per_source[i].merge(acc.series[i]);
        result.timeline.sketches[i].merge(acc.sketches[i]);
      }
      result.timeline.heatmap.merge(acc.grid);
    }
  }

  // Worst-N node selection (what the paper persists to the PFS), from at
  // most num_shards * K candidates instead of O(nodes) buffered maxima.
  const auto keep = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(config.worst_nodes_to_keep, 0)),
      worst_candidates.size());
  std::partial_sort(
      worst_candidates.begin(),
      worst_candidates.begin() + static_cast<std::ptrdiff_t>(keep),
      worst_candidates.end(), std::greater<double>());
  worst_candidates.resize(keep);
  result.worst_node_max_us = std::move(worst_candidates);

  if (config.registry != nullptr) {
    config.registry->counter("fwq.campaign.nodes")
        ->add(static_cast<std::uint64_t>(config.nodes));
    config.registry->counter("fwq.campaign.iterations")
        ->add(result.total_iterations);
    config.registry->counter("fwq.topk.pushes")->add(topk_pushes);
    config.registry->counter("fwq.topk.evictions")->add(topk_evictions);
  }

  result.stats.t_min = global_min == SimTime::max() ? config.work_quantum
                                                    : global_min;
  result.stats.t_max = global_max;
  result.stats.max_noise_length = result.stats.t_max - result.stats.t_min;
  result.stats.samples = result.total_iterations;
  const double tmin_us = result.stats.t_min.to_us();
  result.stats.noise_rate =
      overhead_sum_us /
      (tmin_us * static_cast<double>(result.total_iterations));
  return result;
}

FwqCampaignResult fwq_result_from_traces(
    const std::vector<noise::FwqTrace>& traces) {
  FwqCampaignResult result;
  result.stats = noise::compute_noise_stats(traces);
  for (const auto& t : traces) {
    for (const SimTime it : t.iteration_times) {
      result.cdf.add(it.to_us());
      ++result.total_iterations;
    }
  }
  return result;
}

}  // namespace hpcos::cluster
