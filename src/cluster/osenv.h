// The four OS environments of the study, as cost models for the BSP engine.
//
// Each OsEnvironment bundles a platform (Table 1), a noise profile, a
// memory-management cost model (page sizes, large-page coverage, heap
// churn behaviour), the fabric, and the RDMA registration path. The
// factories encode the paper's configurations:
//   OFP/Linux       — moderately tuned: THP (partial large-page coverage),
//                     glibc heap churn, unbound daemons, balanced IRQs.
//   OFP/McKernel    — LWK on the same nodes: full large pages, retained
//                     memory, quiet cores.
//   Fugaku/Linux    — highly tuned: hugeTLBfs full coverage, caching
//                     allocator, all §4 countermeasures.
//   Fugaku/McKernel — LWK plus Tofu PicoDriver.
#pragma once

#include <cstdint>
#include <string>

#include "hw/platform.h"
#include "net/fabric.h"
#include "net/rdma.h"
#include "noise/profiles.h"
#include "oskernel/process.h"

namespace hpcos::cluster {

enum class OsKind : std::uint8_t { kLinux, kMcKernel };
std::string to_string(OsKind k);

struct MemEnvModel {
  hw::PageSize base_page = hw::PageSize::k4K;
  hw::PageSize large_page = hw::PageSize::k2M;
  // Fraction of application memory actually backed by large pages (THP is
  // opportunistic; hugeTLBfs and the LWK reach ~1.0).
  double large_page_coverage = 1.0;
  os::HeapBehavior heap = os::HeapBehavior::kCached;
  SimTime fault_base = SimTime::us(1);
  SimTime fault_large = SimTime::us(8);
  // Allocation churn (free + re-allocate) pricing per event: fixed syscall
  // work plus a per-MiB term (refaulting, page-table work, shootdowns);
  // lognormal tail captures compaction/khugepaged interference.
  SimTime churn_fixed = SimTime::us(2);
  SimTime churn_per_mib = SimTime::us(1);
  double churn_sigma = 0.05;
  double churn_max_factor = 20.0;
  // Residual kernel-path overhead on memory-bound execution (fault/IRQ
  // entry bookkeeping, cgroup accounting, deeper page-table formats) not
  // modeled individually; calibrated against the paper's small-scale
  // gaps. Zero on the LWK.
  double os_overhead = 0.0;
};

struct OsEnvironment {
  explicit OsEnvironment(hw::PlatformConfig p) : platform(std::move(p)) {}

  std::string name;
  hw::PlatformConfig platform;
  OsKind os = OsKind::kLinux;
  noise::AnalyticNoiseProfile profile;
  MemEnvModel mem;
  net::FabricParams fabric;
  net::RegistrationPath rdma_path = net::RegistrationPath::kLinuxNative;
  net::RdmaModelParams rdma;

  // Multiplier (>= 1) on a compute phase from address-translation
  // overhead, given the working set and this environment's page mix.
  double tlb_compute_factor(std::uint64_t working_set_bytes,
                            double mem_bound_fraction,
                            double coverage_hint = -1.0) const;

  // Median cost of churning (freeing + reallocating + refaulting) `bytes`.
  SimTime churn_median(std::uint64_t bytes) const;

  // Cost of first-touching `bytes` at this environment's page mix.
  SimTime fault_in(std::uint64_t bytes) const;
};

OsEnvironment make_ofp_linux_env();
OsEnvironment make_ofp_mckernel_env();
OsEnvironment make_fugaku_linux_env(const noise::Countermeasures& cm = {});
OsEnvironment make_fugaku_mckernel_env(bool picodriver = true);

}  // namespace hpcos::cluster
