#include "cluster/machine_noise.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hpcos::cluster {

MachineNoiseSampler::MachineNoiseSampler(
    const noise::AnalyticNoiseProfile& profile, std::int64_t nodes,
    int app_threads_per_node, RngStream rng)
    : rng_(rng) {
  HPCOS_CHECK(nodes >= 1 && app_threads_per_node >= 1);
  const double total_threads =
      static_cast<double>(nodes) * app_threads_per_node;

  std::uint64_t src_idx = 0;
  for (const auto& s : profile.sources) {
    RngStream gate = rng_.split(src_idx++);
    // Straggler gating: how many nodes exhibit this source at all.
    double active_nodes = static_cast<double>(nodes);
    if (s.node_fraction < 1.0) {
      // Binomial(nodes, f); Poisson approximation is exact enough for the
      // tiny fractions used (1e-4 of 158k nodes).
      active_nodes = static_cast<double>(
          gate.poisson(static_cast<double>(nodes) * s.node_fraction));
      if (active_nodes == 0.0) continue;
    }

    ActiveSource as{.spec = s};
    const auto interval_ns =
        static_cast<double>(s.mean_interval.count_ns());
    switch (s.scope) {
      case noise::SourceScope::kPerCore:
        // Independent process per thread.
        as.arrivals_per_ns =
            active_nodes * app_threads_per_node / interval_ns;
        break;
      case noise::SourceScope::kPerNodeRandomCore:
      case noise::SourceScope::kAllCores:
        // One process per node. (kAllCores delays every thread of the
        // node at once; for the machine-wide max the worst single
        // occurrence still dominates.)
        as.arrivals_per_ns = active_nodes / interval_ns;
        break;
    }

    // Expected per-thread overhead, averaged over every thread in the
    // machine: arrivals x mean duration x threads delayed per arrival,
    // divided by the total thread population. A kAllCores arrival stalls
    // all app_threads_per_node threads of its node at once; every other
    // scope delays exactly one thread per arrival. For gated sources
    // (node_fraction < 1) the arrivals already carry the active_nodes
    // factor, so the machine average correctly shrinks with the fraction.
    const double mean_dur_ns =
        static_cast<double>(s.duration.mean().count_ns());
    const double threads_per_hit =
        s.scope == noise::SourceScope::kAllCores
            ? static_cast<double>(app_threads_per_node)
            : 1.0;
    expected_rate_ +=
        as.arrivals_per_ns * mean_dur_ns * threads_per_hit / total_threads;

    sources_.push_back(std::move(as));
  }

  // Hardware jitter floor: the slowest of N threads sits ~sqrt(2 ln N)
  // standard deviations out.
  if (profile.base_jitter_sd > 0.0 || profile.base_jitter_mean > 0.0) {
    const double z = std::sqrt(2.0 * std::log(std::max(2.0, total_threads)));
    jitter_worst_fraction_ =
        std::max(0.0, profile.base_jitter_mean + z * profile.base_jitter_sd);
    expected_rate_ += profile.base_jitter_mean;
  }
}

SimTime MachineNoiseSampler::sample_global_delay(SimTime window) {
  return sample_global_delay_attributed(window).delay;
}

GlobalDelaySample MachineNoiseSampler::sample_global_delay_attributed(
    SimTime window) {
  GlobalDelaySample out;
  SimTime worst = SimTime::zero();
  const ActiveSource* dominant = nullptr;
  const auto window_ns = static_cast<double>(window.count_ns());
  for (auto& s : sources_) {
    const std::uint64_t k = rng_.poisson(s.arrivals_per_ns * window_ns);
    if (k == 0) continue;
    out.hits += k;
    const SimTime event = s.spec.duration.sample_max(k, rng_);
    if (event > worst) {
      worst = event;
      dominant = &s;
    }
  }
  out.worst_event = worst;
  out.delay = worst + window.scaled(jitter_worst_fraction_);
  if (dominant != nullptr) {
    out.source = dominant->spec.name;
    out.kind = dominant->spec.kind;
  } else if (out.delay > SimTime::zero()) {
    out.source = "jitter-floor";
    out.kind = noise::SourceKind::kHardware;
  }
  return out;
}

double MachineNoiseSampler::expected_rate() const { return expected_rate_; }

}  // namespace hpcos::cluster
