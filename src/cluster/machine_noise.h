// Machine-scale noise sampling in O(sources) per barrier window.
//
// A bulk-synchronous iteration across the whole machine waits for its
// worst-hit thread (Eq. 1). Enumerating every thread is infeasible at
// 7.6 M hardware threads; instead, per source, we draw the *number* of
// hits across the whole population within the window (Poisson) and then
// one draw from the max-of-k duration distribution (inverse-CDF of
// U^(1/k)). Straggler sources gate on a binomially-sampled subset of
// nodes, so a 24-rack job and the full machine see different populations —
// which is exactly the Figure-4b full-scale effect.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "noise/analytic.h"

namespace hpcos::cluster {

// One sampled barrier wait, with the noise source that caused it. The
// attribution layer (obs/attrib) uses the tag to explain stragglers; the
// delay itself is identical to what sample_global_delay returns (same
// draws in the same order, so tagging never perturbs a seeded run).
struct GlobalDelaySample {
  SimTime delay;        // what the barrier waits (worst event + jitter)
  SimTime worst_event;  // duration of the dominant discrete hit (zero if
                        // only the jitter floor contributed)
  // Name/kind of the dominant source; "jitter-floor" when no discrete
  // source hit within the window but the floor stretched it; "" when the
  // delay is exactly zero.
  std::string source;
  noise::SourceKind kind = noise::SourceKind::kHardware;
  std::uint64_t hits = 0;  // discrete hits across all sources this window
};

class MachineNoiseSampler {
 public:
  MachineNoiseSampler(const noise::AnalyticNoiseProfile& profile,
                      std::int64_t nodes, int app_threads_per_node,
                      RngStream rng);

  // Max extra delay any thread suffers during a `window` of busy time; a
  // global barrier at the end of the window waits exactly this long.
  SimTime sample_global_delay(SimTime window);

  // Same draw sequence as sample_global_delay, plus attribution of the
  // dominant contributor.
  GlobalDelaySample sample_global_delay_attributed(SimTime window);

  // Deterministic estimate of the average per-thread overhead fraction
  // (for sanity checks against Eq. 2 style rates).
  double expected_rate() const;

  std::size_t active_source_count() const { return sources_.size(); }

 private:
  struct ActiveSource {
    noise::NoiseSourceSpec spec;
    // Expected arrivals per nanosecond of window across the machine.
    double arrivals_per_ns = 0.0;
  };

  std::vector<ActiveSource> sources_;
  double jitter_worst_fraction_ = 0.0;  // max-of-N jitter floor
  double expected_rate_ = 0.0;
  RngStream rng_;
};

}  // namespace hpcos::cluster
