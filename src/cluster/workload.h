// Workload interface for the cluster-scale BSP engine.
//
// An application model describes, per rank and iteration, the quantities
// the OS comparison turns on: compute time, working-set size (TLB reach),
// allocation churn (the Linux heap path), first-touch volume, and the
// communication pattern. The engine (bsp.h) prices those under a given
// OsEnvironment.
#pragma once

#include <cstdint>
#include <string>

#include "common/sim_time.h"

namespace hpcos::cluster {

struct OsEnvironment;  // osenv.h

struct JobConfig {
  std::int64_t nodes = 1;
  int ranks_per_node = 4;
  int threads_per_rank = 12;

  std::int64_t total_ranks() const { return nodes * ranks_per_node; }
  std::int64_t total_threads() const {
    return total_ranks() * threads_per_rank;
  }
};

// Per-rank, per-iteration work description.
struct RankWork {
  SimTime compute;                     // pure compute at full speed
  std::uint64_t working_set_bytes = 0;  // drives TLB reach effects
  double mem_bound_fraction = 0.5;      // share of compute hit by TLB misses
  std::uint64_t alloc_churn_bytes = 0;  // freed+reallocated this iteration
  std::uint64_t touch_bytes = 0;        // first-touch (page faults)
  int allreduces = 0;
  std::uint64_t allreduce_bytes = 8;
  int halo_neighbors = 0;
  std::uint64_t halo_bytes = 0;
  int barriers = 0;          // inter-node (MPI) barriers
  int thread_barriers = 0;   // intra-rank (OpenMP) barriers per iteration
  // Lognormal sigma of compute imbalance across ranks (load imbalance,
  // not OS noise).
  double imbalance_sigma = 0.0;
  // Tuned codes hugepage-align their hot buffers, raising the effective
  // THP coverage above the environment default; <0 keeps the default.
  double large_page_coverage_hint = -1.0;
};

// One-time setup before the iteration loop.
struct InitWork {
  SimTime serial_setup;                 // I/O, mesh build, etc.
  std::uint64_t touch_bytes = 0;        // first-touch of the working set
  int rdma_registrations = 0;           // STAG/MR setups per rank
  std::uint64_t rdma_bytes_each = 0;    // size of each registration
};

class Workload {
 public:
  virtual ~Workload() = default;
  virtual std::string name() const = 0;
  virtual int iterations() const = 0;
  virtual RankWork rank_work(int iteration, const JobConfig& job,
                             const OsEnvironment& env) const = 0;
  virtual InitWork init_work(const JobConfig& job,
                             const OsEnvironment& env) const {
    (void)job;
    (void)env;
    return InitWork{};
  }
};

}  // namespace hpcos::cluster
