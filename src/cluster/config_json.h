// Canonical JSON serializers for the simulation configs (DESIGN §8).
//
// These produce the documents that common/confighash.h digests into the
// cross-run memoization key: the run ledger (obs/runlog) groups records by
// config hash, tools/trend compares runs within a group, and the planned
// campaign server will use the same key for exact result caching.
//
// The serialization contract:
//   * every knob that can change a simulated number is included — seeds,
//     durations, shard boundaries (they fix the floating-point summation
//     order), model parameters, timeline/sketch shapes;
//   * pure host-execution knobs are excluded — `threads` (results are
//     bit-identical across host thread counts, DESIGN §6) and
//     observability sinks (`registry`, attached series) never appear, so
//     the same experiment run on different hosts lands in the same group;
//   * times serialize as integer nanoseconds (exact), enums as their
//     stable string names, and each document carries a `schema` member so
//     a field rename is a visible schema bump, not a silent rehash.
//
// tests/test_confighash.cpp pins both halves: hashes are invariant across
// `threads` and member order, and flipping any semantic knob changes them.
#pragma once

#include <string>

#include "common/json.h"
#include "cluster/fwq_campaign.h"
#include "cluster/osenv.h"
#include "cluster/workload.h"
#include "noise/analytic.h"
#include "noise/profiles.h"

namespace hpcos::cluster {

// FWQ campaign knobs (schema "hpcos-config-fwq-campaign/1"); `threads` and
// `registry` are deliberately absent.
JsonValue to_config_json(const FwqCampaignConfig& config);

// BSP job geometry (schema "hpcos-config-bsp-job/1").
JsonValue to_config_json(const JobConfig& job);

// §4.2 Linux countermeasure toggles (schema
// "hpcos-config-countermeasures/1") — the OS-personality knob space of
// Table 2.
JsonValue to_config_json(const noise::Countermeasures& cm);

// Memory-management cost model knobs (schema "hpcos-config-mem-env/1").
JsonValue to_config_json(const MemEnvModel& mem);

// Full analytic noise profile: name, jitter floor, and every source spec
// (schema "hpcos-config-noise-profile/1"). Countermeasure changes surface
// here as source-list changes, so environments built from different
// Countermeasures hash differently even though the struct itself is gone
// by then.
JsonValue to_config_json(const noise::AnalyticNoiseProfile& profile);

// OS personality: kind, noise profile, memory model, fabric and RDMA path
// (schema "hpcos-config-os-environment/1").
JsonValue to_config_json(const OsEnvironment& env);

// A bench plan point: workload x environment x job geometry x seed — the
// unit the fig5/6/7 plans sweep (schema "hpcos-config-bench-plan/1").
JsonValue bench_plan_config_json(const std::string& workload,
                                 const OsEnvironment& env,
                                 const JobConfig& job, Seed seed);

}  // namespace hpcos::cluster
