#include "sim/folded_stack.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <stdexcept>

namespace hpcos::sim {

namespace {

std::string frame_label(const TraceRecord& r) {
  std::string label = r.label.empty() ? to_string(r.category) : r.label;
  std::replace(label.begin(), label.end(), ';', ':');
  return label;
}

void collapse(const SpanForest& forest, std::size_t index,
              const std::string& prefix,
              std::map<std::string, std::int64_t>& totals) {
  const TraceRecord& r = forest.records()[index];
  const std::string path =
      prefix.empty() ? frame_label(r) : prefix + ";" + frame_label(r);
  const std::int64_t self_ns = forest.self_time(index).count_ns();
  if (self_ns > 0) totals[path] += self_ns;
  for (const std::size_t c : forest.children(index)) {
    collapse(forest, c, path, totals);
  }
}

}  // namespace

std::string folded_stack(const SpanForest& forest) {
  std::map<std::string, std::int64_t> totals;  // sorted == deterministic
  for (const std::size_t root : forest.roots()) {
    collapse(forest, root, "", totals);
  }
  std::string out;
  for (const auto& [path, value] : totals) {
    out += path;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }
  return out;
}

std::string folded_stack(const std::vector<TraceRecord>& records) {
  return folded_stack(SpanForest(records));
}

void export_folded_stack(const std::vector<TraceRecord>& records,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open folded-stack path: " + path);
  out << folded_stack(records);
  if (!out) throw std::runtime_error("write failed for folded stack: " + path);
}

std::string validate_folded_stack(const std::string& text) {
  std::string prev_stack;
  bool first = true;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line =
        text.substr(pos, eol == std::string::npos ? std::string::npos
                                                  : eol - pos);
    pos = eol == std::string::npos ? text.size() : eol + 1;
    ++line_no;
    if (line.empty()) continue;
    const std::string where = "line " + std::to_string(line_no);

    const std::size_t sep = line.rfind(' ');
    if (sep == std::string::npos || sep == 0 || sep + 1 == line.size()) {
      return where + ": expected \"<stack> <value>\"";
    }
    const std::string stack = line.substr(0, sep);
    const std::string value = line.substr(sep + 1);
    for (const char c : value) {
      if (c < '0' || c > '9') {
        return where + ": value is not a positive integer: \"" + value + "\"";
      }
    }
    if (value == "0") return where + ": zero-valued frame";
    // Non-empty ';'-separated frames.
    std::size_t frame_start = 0;
    while (true) {
      const std::size_t semi = stack.find(';', frame_start);
      const std::size_t frame_end =
          semi == std::string::npos ? stack.size() : semi;
      if (frame_end == frame_start) return where + ": empty frame in stack";
      if (semi == std::string::npos) break;
      frame_start = semi + 1;
    }
    if (!first) {
      if (stack == prev_stack) return where + ": duplicate stack";
      if (stack < prev_stack) return where + ": stacks are not sorted";
    }
    prev_stack = stack;
    first = false;
  }
  return {};
}

std::vector<std::pair<std::string, std::int64_t>> parse_folded_stack(
    const std::string& text) {
  if (const std::string err = validate_folded_stack(text); !err.empty()) {
    throw std::runtime_error("folded stack invalid: " + err);
  }
  std::vector<std::pair<std::string, std::int64_t>> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line =
        text.substr(pos, eol == std::string::npos ? std::string::npos
                                                  : eol - pos);
    pos = eol == std::string::npos ? text.size() : eol + 1;
    if (line.empty()) continue;
    const std::size_t sep = line.rfind(' ');
    out.emplace_back(line.substr(0, sep),
                     std::stoll(line.substr(sep + 1)));
  }
  return out;
}

}  // namespace hpcos::sim
