// Chrome trace_event export for TraceBuffer snapshots.
//
// §4.2.1 of the paper inspects interference with ftrace; the practical
// companion workflow is loading the capture into a timeline viewer. This
// module serializes any set of TraceRecords into the Chrome trace_event
// JSON format (the "JSON Array Format" with an explicit "traceEvents"
// wrapper object), which loads directly in Perfetto / chrome://tracing.
//
// Mapping:
//   - records with duration > 0 become complete events (ph "X"),
//     instantaneous markers become instant events (ph "i")
//   - ts / dur are microseconds (the trace_event unit); SimTime is integer
//     nanoseconds so values may carry a fractional part
//   - pid is a caller-chosen process id (e.g. the node id), tid is the core
//   - span / parent ids and the category name ride in "args" so a loaded
//     trace can be grouped back into operation trees
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "sim/trace.h"

namespace hpcos::sim {

struct ChromeTraceOptions {
  // "pid" stamped on every event; multi-node exports can merge several
  // per-node documents by giving each node a distinct pid.
  std::uint64_t pid = 0;
  // Process name shown in the viewer (emitted as a process_name metadata
  // event when non-empty).
  std::string process_name;
  // Track names keyed by tid (the record's core id, or a synthetic rank
  // track id). Each entry becomes a thread_name metadata event, so e.g.
  // BSP rank timelines show up as "rank 3 @ node 7" instead of a bare
  // core number.
  std::vector<std::pair<std::int64_t, std::string>> thread_names;
};

// Build the trace_event document for a set of records. Events are sorted by
// timestamp (then span id) so `ts` is monotonic in the output.
JsonValue chrome_trace_document(const std::vector<TraceRecord>& records,
                                const ChromeTraceOptions& options = {});

// One record set plus the pid / naming metadata it should carry in a merged
// document. Used for whole-run exports that combine several nodes (and
// synthetic rank tracks) into a single Perfetto-loadable file.
struct ChromeTraceGroup {
  std::vector<TraceRecord> records;
  ChromeTraceOptions options;
};

// Merge several groups into one document: all metadata ("M") events are
// emitted first, then every group's events globally sorted by timestamp so
// the validator's monotonic-ts check holds across groups.
JsonValue chrome_trace_document(const std::vector<ChromeTraceGroup>& groups);

// Snapshot `buffer` and write the document to `path` (pretty-printed).
// Throws std::runtime_error on I/O failure.
void export_chrome_trace(const TraceBuffer& buffer, const std::string& path,
                         const ChromeTraceOptions& options = {});
void export_chrome_trace(const std::vector<TraceRecord>& records,
                         const std::string& path,
                         const ChromeTraceOptions& options = {});

// Validate the shape of a trace_event document produced by the exporter:
// "traceEvents" array, required keys per event, monotonically non-decreasing
// "ts" over non-metadata events. Returns "" when valid, else a description
// of the first violation.
std::string validate_chrome_trace(const JsonValue& doc);

}  // namespace hpcos::sim
