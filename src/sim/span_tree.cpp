#include "sim/span_tree.h"

#include <algorithm>
#include <unordered_map>

namespace hpcos::sim {

SpanForest::SpanForest(const std::vector<TraceRecord>& records)
    : records_(&records),
      children_(records.size()),
      self_time_(records.size(), SimTime::zero()) {
  // Span id -> record index. Built over the whole snapshot first, so
  // emission order never matters (a child recorded before its parent —
  // e.g. an inner phase completing before the enclosing operation is
  // closed — still links up). Duplicate span ids keep the first record.
  std::unordered_map<std::uint64_t, std::size_t> by_span;
  by_span.reserve(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].span != 0) by_span.emplace(records[i].span, i);
  }

  for (std::size_t i = 0; i < records.size(); ++i) {
    const TraceRecord& r = records[i];
    if (r.span == 0) continue;  // plain event, not part of a span tree
    if (r.parent == 0) {
      roots_.push_back(i);
      continue;
    }
    const auto parent = by_span.find(r.parent);
    if (parent == by_span.end() || parent->second == i) {
      // Orphan: the parent was evicted by ring wraparound (or the link is
      // degenerate). Promote to root so the subtree still aggregates.
      roots_.push_back(i);
    } else {
      children_[parent->second].push_back(i);
    }
  }

  const auto by_time = [&](std::size_t a, std::size_t b) {
    if (records[a].time != records[b].time) {
      return records[a].time < records[b].time;
    }
    return records[a].span < records[b].span;
  };
  for (auto& kids : children_) std::sort(kids.begin(), kids.end(), by_time);
  std::sort(roots_.begin(), roots_.end(), by_time);

  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].span == 0) continue;
    SimTime covered;
    for (const std::size_t c : children_[i]) covered += records[c].duration;
    const SimTime self = records[i].duration - covered;
    self_time_[i] = self.is_negative() ? SimTime::zero() : self;
    total_self_time_ += self_time_[i];
  }
}

std::map<hw::CoreId, std::vector<std::size_t>> SpanForest::roots_by_track(
    const std::string& label) const {
  std::map<hw::CoreId, std::vector<std::size_t>> tracks;
  for (const std::size_t i : roots_) {
    const TraceRecord& r = (*records_)[i];
    if (r.label == label) tracks[r.core].push_back(i);  // roots_ is sorted
  }
  return tracks;
}

}  // namespace hpcos::sim
