#include "sim/chrome_trace.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace hpcos::sim {

namespace {

JsonValue event_to_json(const TraceRecord& rec, const ChromeTraceOptions& opt) {
  JsonValue ev = JsonValue::object();
  ev.set("name", rec.label.empty() ? to_string(rec.category) : rec.label);
  ev.set("cat", to_string(rec.category));
  const bool complete = rec.duration > SimTime::zero();
  ev.set("ph", complete ? "X" : "i");
  ev.set("ts", rec.time.to_us());
  if (complete) ev.set("dur", rec.duration.to_us());
  if (!complete) ev.set("s", "t");  // instant event scope: thread
  ev.set("pid", opt.pid);
  ev.set("tid", static_cast<std::int64_t>(rec.core));
  JsonValue args = JsonValue::object();
  if (rec.span != 0) args.set("span", rec.span);
  if (rec.parent != 0) args.set("parent", rec.parent);
  ev.set("args", std::move(args));
  return ev;
}

JsonValue metadata_event(const char* kind, std::uint64_t pid,
                         std::int64_t tid, const std::string& name) {
  JsonValue meta = JsonValue::object();
  meta.set("name", kind);
  meta.set("ph", "M");
  meta.set("pid", pid);
  meta.set("tid", tid);
  JsonValue args = JsonValue::object();
  args.set("name", name);
  meta.set("args", std::move(args));
  return meta;
}

void append_metadata(JsonValue& events, const ChromeTraceOptions& options) {
  if (!options.process_name.empty()) {
    events.push_back(
        metadata_event("process_name", options.pid, 0, options.process_name));
  }
  for (const auto& [tid, name] : options.thread_names) {
    events.push_back(metadata_event("thread_name", options.pid, tid, name));
  }
}

void append_sorted_events(JsonValue& events,
                          std::vector<std::pair<const TraceRecord*,
                                                const ChromeTraceOptions*>>
                              ordered) {
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first->time != b.first->time) {
                       return a.first->time < b.first->time;
                     }
                     return a.first->span < b.first->span;
                   });
  for (const auto& [rec, opt] : ordered) {
    events.push_back(event_to_json(*rec, *opt));
  }
}

}  // namespace

JsonValue chrome_trace_document(const std::vector<TraceRecord>& records,
                                const ChromeTraceOptions& options) {
  std::vector<ChromeTraceGroup> groups(1);
  groups[0].records = records;
  groups[0].options = options;
  return chrome_trace_document(groups);
}

JsonValue chrome_trace_document(const std::vector<ChromeTraceGroup>& groups) {
  JsonValue events = JsonValue::array();
  // Groups with no records contribute no metadata either: a process/thread
  // name with zero events would show up as an empty track in the viewer,
  // and an all-empty export must still be a valid (empty) document.
  for (const auto& group : groups) {
    if (!group.records.empty()) append_metadata(events, group.options);
  }
  std::vector<std::pair<const TraceRecord*, const ChromeTraceOptions*>>
      ordered;
  for (const auto& group : groups) {
    for (const auto& rec : group.records) {
      ordered.emplace_back(&rec, &group.options);
    }
  }
  append_sorted_events(events, std::move(ordered));

  JsonValue doc = JsonValue::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  return doc;
}

void export_chrome_trace(const std::vector<TraceRecord>& records,
                         const std::string& path,
                         const ChromeTraceOptions& options) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace path: " + path);
  out << chrome_trace_document(records, options).dump_pretty();
  if (!out) throw std::runtime_error("write failed for trace: " + path);
}

void export_chrome_trace(const TraceBuffer& buffer, const std::string& path,
                         const ChromeTraceOptions& options) {
  export_chrome_trace(buffer.snapshot(), path, options);
}

std::string validate_chrome_trace(const JsonValue& doc) {
  if (!doc.is_object()) return "document is not a JSON object";
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr) return "missing \"traceEvents\"";
  if (!events->is_array()) return "\"traceEvents\" is not an array";
  double last_ts = -std::numeric_limits<double>::infinity();
  const auto& arr = events->as_array();
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const auto& ev = arr[i];
    const std::string where = "traceEvents[" + std::to_string(i) + "]";
    if (!ev.is_object()) return where + " is not an object";
    for (const char* key : {"name", "ph", "pid"}) {
      if (!ev.contains(key)) return where + " missing \"" + key + "\"";
    }
    if (!ev.at("ph").is_string()) return where + " ph is not a string";
    const std::string& ph = ev.at("ph").as_string();
    if (ph == "M") continue;  // metadata events carry no timestamp
    for (const char* key : {"ts", "tid", "cat"}) {
      if (!ev.contains(key)) return where + " missing \"" + key + "\"";
    }
    if (!ev.at("ts").is_number() || !std::isfinite(ev.at("ts").as_number())) {
      return where + " ts is not a finite number";
    }
    const double ts = ev.at("ts").as_number();
    if (ts < last_ts) return where + " ts is not monotonic";
    last_ts = ts;
    if (ph == "X") {
      if (!ev.contains("dur") || !ev.at("dur").is_number() ||
          !std::isfinite(ev.at("dur").as_number()) ||
          ev.at("dur").as_number() < 0) {
        return where + " complete event lacks a finite non-negative dur";
      }
    }
  }
  return {};
}

}  // namespace hpcos::sim
