// Folded-stack export (flamegraph / speedscope "collapsed" format).
//
// The companion to chrome_trace.h for aggregate views: every span tree in
// a TraceRecord set collapses into lines of
//
//   root;child;grandchild <self-time-ns>
//
// — the input format of flamegraph.pl, speedscope, and inferno. Frame
// values are *self* times (span_tree.h), so the flame graph's widths sum
// correctly at every depth and nested spans never double count. Identical
// paths aggregate; lines are sorted lexicographically so the output is
// deterministic and diffable.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/span_tree.h"
#include "sim/trace.h"

namespace hpcos::sim {

// Collapse all span trees into folded-stack text. Frames are labeled with
// the record's label (falling back to the category name when empty);
// semicolons inside labels are replaced with ':' to keep the format
// unambiguous. Frames with zero self time are omitted (their time lives
// entirely in their children). Returns "" for a record set with no spans.
std::string folded_stack(const std::vector<TraceRecord>& records);
std::string folded_stack(const SpanForest& forest);

// Write folded-stack text to `path`; throws std::runtime_error on I/O
// failure. The file loads directly in speedscope / flamegraph.pl.
void export_folded_stack(const std::vector<TraceRecord>& records,
                         const std::string& path);

// Structural validation of folded text: every non-empty line is
// "<stack> <positive integer>", the stack is non-empty with non-empty
// ';'-separated frames, no duplicate stacks, lines sorted. Returns ""
// when valid, else a description of the first violation.
std::string validate_folded_stack(const std::string& text);

// Parse folded text back into (stack, value) pairs in file order; throws
// std::runtime_error on malformed lines. Together with folded_stack()
// this is the round trip the tests lock down.
std::vector<std::pair<std::string, std::int64_t>> parse_folded_stack(
    const std::string& text);

}  // namespace hpcos::sim
