// ftrace-style event tracing.
//
// §4.2.1 of the paper identifies interfering kernel tasks with ftrace; the
// substrate mirrors that workflow: kernel models emit trace records into a
// bounded ring buffer, and analysis code (tests, the noise_audit example)
// filters and aggregates them to attribute noise to its source.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "hw/ids.h"

namespace hpcos::sim {

enum class TraceCategory : std::uint8_t {
  kTimerTick,
  kIrq,
  kContextSwitch,
  kKworker,
  kBlkMq,
  kDaemon,
  kPmuRead,
  kTlbShootdown,
  kSyscall,
  kSyscallOffload,
  kPageFault,
  kScheduler,
  kCollective,
  kUser,
};
std::string to_string(TraceCategory c);

struct TraceRecord {
  SimTime time;
  hw::CoreId core = hw::kInvalidCore;
  TraceCategory category = TraceCategory::kUser;
  SimTime duration;      // zero for instantaneous markers
  std::string label;     // e.g. daemon name, syscall name

  // Span identity: a multi-hop operation (an offloaded syscall crossing
  // LWK -> IKC -> proxy -> IKC -> LWK) records one root span plus child
  // spans carrying the root's id as `parent`, so analysis can rebuild the
  // whole operation as a tree (and export it to Chrome trace_event JSON —
  // see chrome_trace.h). 0 means "not part of a span tree".
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
};

class TraceBuffer {
 public:
  // capacity == 0 disables tracing entirely (zero overhead on hot paths
  // beyond one branch).
  explicit TraceBuffer(std::size_t capacity = 0);

  bool enabled() const { return capacity_ > 0; }
  void record(TraceRecord rec);

  // Allocate a fresh span id (never 0). Ids are unique per buffer, which
  // is the scope any one export covers.
  std::uint64_t new_span() { return ++next_span_; }

  std::size_t size() const { return used_; }
  std::uint64_t total_recorded() const { return total_; }
  std::uint64_t dropped() const { return total_ - used_; }

  // Records in chronological order (oldest retained first).
  std::vector<TraceRecord> snapshot() const;
  std::vector<TraceRecord> filter(TraceCategory category) const;
  std::vector<TraceRecord> filter(
      const std::function<bool(const TraceRecord&)>& pred) const;

  // Total duration attributed to a category on a specific core (or all
  // cores when core == kInvalidCore).
  SimTime total_duration(TraceCategory category,
                         hw::CoreId core = hw::kInvalidCore) const;

  void clear();

 private:
  std::size_t capacity_;
  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;  // next write slot
  std::size_t used_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t next_span_ = 0;
};

}  // namespace hpcos::sim
