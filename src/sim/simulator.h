// Discrete-event simulation core.
//
// The whole node model runs on this engine: kernel ticks, IRQs, daemon
// wakeups, compute-burst completions and IKC message deliveries are all
// events. Determinism is guaranteed by a strict (time, sequence) total
// order: two events at the same instant fire in scheduling order, so a run
// is a pure function of (configuration, seed) regardless of host threading.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/sim_time.h"

namespace hpcos::sim {

using EventFn = std::function<void()>;

// Handle for cancellation. Default-constructed ids are invalid.
struct EventId {
  std::uint64_t seq = 0;
  bool valid() const { return seq != 0; }
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedule fn at absolute time t (must be >= now()).
  EventId schedule_at(SimTime t, EventFn fn);
  // Schedule fn `dt` after now (dt >= 0).
  EventId schedule_after(SimTime dt, EventFn fn);

  // Cancel a pending event. Returns true when the event had not yet fired
  // (and had not been cancelled before).
  bool cancel(EventId id);

  // Execute the next pending event, if any. Returns false when the queue
  // is empty.
  bool step();

  // Run events with timestamp <= t_end, then advance the clock to t_end.
  // Returns the number of events executed.
  std::size_t run_until(SimTime t_end);

  // Run until the queue drains or `max_events` have executed (a guard
  // against runaway self-scheduling models).
  std::size_t run_all(std::size_t max_events = SIZE_MAX);

  bool has_pending() const { return !pending_.empty(); }
  std::size_t pending_count() const { return pending_.size(); }
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    bool operator>(const HeapEntry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  // Pops the next live heap entry into `out`; skips cancelled ones.
  bool pop_next(HeapEntry& out, EventFn& fn);

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap_;
  std::unordered_map<std::uint64_t, EventFn> pending_;
};

}  // namespace hpcos::sim
