// Discrete-event simulation core.
//
// The whole node model runs on this engine: kernel ticks, IRQs, daemon
// wakeups, compute-burst completions and IKC message deliveries are all
// events. Determinism is guaranteed by a strict (time, sequence) total
// order: two events at the same instant fire in scheduling order, so a run
// is a pure function of (configuration, seed) regardless of host threading.
//
// Self-observability (the instrumentation the calendar-queue rewrite will
// be judged against — see EXPERIMENTS.md "Profiling the simulator"):
//   * queue_telemetry() — always-on push/pop/cancel/max-depth counters
//     (plain single-writer increments; cost is in the noise).
//   * set_depth_probe() — optional queue-depth hook invoked after every
//     push and every executed event; tools feed it into an
//     obs::ts::TimeSeries to get the depth-over-virtual-time series. One
//     branch when unset.
//   * Event tags + handler attribution — schedule sites may pass a static
//     string tag ("linux.tick", "ikc.deliver"); while the host profiler
//     is enabled, step() times each handler under a "des.fire.<tag>"
//     profiler scope and accumulates per-tag host time, decomposing the
//     DES hot loop's cost by handler kind. Zero timing overhead while the
//     profiler is disabled (one branch per event).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/sim_time.h"
#include "obs/prof/prof.h"

namespace hpcos::sim {

using EventFn = std::function<void()>;

// Handle for cancellation. Default-constructed ids are invalid.
struct EventId {
  std::uint64_t seq = 0;
  bool valid() const { return seq != 0; }
};

// Always-on event-queue counters (single-writer, no synchronization).
struct QueueTelemetry {
  std::uint64_t pushes = 0;      // schedule_at/schedule_after calls
  std::uint64_t pops = 0;        // live events popped and fired
  std::uint64_t cancels = 0;     // successful cancel() calls
  std::uint64_t skipped = 0;     // cancelled heap entries discarded on pop
  std::size_t max_depth = 0;     // peak pending-event count
};

// Per-tag host-time attribution, populated only while obs::prof is
// enabled. `fired` counts are a pure function of the simulated work;
// `host_ns` is host-dependent.
struct HandlerStat {
  std::string tag;
  std::uint64_t fired = 0;
  std::int64_t host_ns = 0;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedule fn at absolute time t (must be >= now()). `tag` labels the
  // handler for host-time attribution; it must point at storage that
  // outlives the simulator (string literals at call sites).
  EventId schedule_at(SimTime t, EventFn fn, const char* tag = nullptr);
  // Schedule fn `dt` after now (dt >= 0).
  EventId schedule_after(SimTime dt, EventFn fn, const char* tag = nullptr);

  // Cancel a pending event. Returns true when the event had not yet fired
  // (and had not been cancelled before).
  bool cancel(EventId id);

  // Execute the next pending event, if any. Returns false when the queue
  // is empty.
  bool step();

  // Run events with timestamp <= t_end, then advance the clock to t_end.
  // Returns the number of events executed.
  std::size_t run_until(SimTime t_end);

  // Run until the queue drains or `max_events` have executed (a guard
  // against runaway self-scheduling models).
  std::size_t run_all(std::size_t max_events = SIZE_MAX);

  bool has_pending() const { return !pending_.empty(); }
  std::size_t pending_count() const { return pending_.size(); }
  std::uint64_t events_executed() const { return executed_; }

  const QueueTelemetry& queue_telemetry() const { return telemetry_; }

  // Queue-depth hook: probe(now, pending_count) after each push and each
  // executed event. Pass nullptr to detach.
  using DepthProbe = std::function<void(SimTime, std::size_t)>;
  void set_depth_probe(DepthProbe probe) { depth_probe_ = std::move(probe); }

  // Host-time attribution per event tag, tag-sorted (deterministic).
  // Empty unless events fired while obs::prof was enabled.
  std::vector<HandlerStat> handler_stats() const;

 private:
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    bool operator>(const HeapEntry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  struct Pending {
    EventFn fn;
    const char* tag = nullptr;
  };

  // Per-tag accumulator; tags are interned by pointer identity first
  // (string literals), falling back to a content match so equal literals
  // from different translation units share one slot.
  struct TagEntry {
    const char* tag = nullptr;
    obs::prof::ScopeId scope = 0;
    std::uint64_t fired = 0;
    std::int64_t host_ns = 0;
  };
  TagEntry& tag_entry(const char* tag);

  // Pops the next live heap entry into `out`; skips cancelled ones.
  bool pop_next(HeapEntry& out, Pending& ev);

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  QueueTelemetry telemetry_;
  DepthProbe depth_probe_;
  std::vector<TagEntry> tags_;
};

}  // namespace hpcos::sim
