// Span-tree reconstruction and self-time math over TraceRecord sets.
//
// PRs 2-3 made kernel models emit parent-linked span trees (offloaded
// syscalls, page-fault/TLBI trees, BSP phase trees); this module is the
// shared analysis substrate over them: rebuild the forest from the flat
// record stream (which may be emitted out of order and may have lost
// ancestors to ring-buffer wraparound), compute each span's *self time*
// (its duration minus the duration covered by its children — the quantity
// per-source attribution sums, so nested spans never double count), and
// group per-track root sequences (the "i-th bsp:iteration on rank track
// r" lookup the straggler analysis needs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace hpcos::sim {

// Immutable index over one snapshot. Indices refer to the `records`
// vector the forest was built from; the caller keeps it alive.
class SpanForest {
 public:
  explicit SpanForest(const std::vector<TraceRecord>& records);

  const std::vector<TraceRecord>& records() const { return *records_; }

  // Indices of tree roots: spanned records whose parent is 0 or whose
  // parent record was evicted from the ring (orphans are promoted to
  // roots so truncated trees still aggregate instead of vanishing).
  const std::vector<std::size_t>& roots() const { return roots_; }

  // Children of the record at `index`, ordered by (time, span id).
  const std::vector<std::size_t>& children(std::size_t index) const {
    return children_[index];
  }

  // duration minus the summed duration of direct children, clamped at
  // zero (a child longer than its parent is a recording artifact, not
  // negative time).
  SimTime self_time(std::size_t index) const { return self_time_[index]; }

  // Sum of self times over every spanned record (== sum of root durations
  // when each tree's children exactly tile their parents).
  SimTime total_self_time() const { return total_self_time_; }

  // Root indices carrying `label`, grouped by the record's core (the
  // synthetic rank track for BSP traces), each group in time order. The
  // n-th entry of a track's vector is that track's n-th such span — e.g.
  // iteration n of the rank timeline.
  std::map<hw::CoreId, std::vector<std::size_t>> roots_by_track(
      const std::string& label) const;

 private:
  const std::vector<TraceRecord>* records_;
  std::vector<std::size_t> roots_;
  std::vector<std::vector<std::size_t>> children_;
  std::vector<SimTime> self_time_;
  SimTime total_self_time_;
};

}  // namespace hpcos::sim
