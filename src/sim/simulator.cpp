#include "sim/simulator.h"

#include <utility>

namespace hpcos::sim {

EventId Simulator::schedule_at(SimTime t, EventFn fn) {
  HPCOS_CHECK_MSG(t >= now_, "event scheduled in the past");
  HPCOS_CHECK(fn != nullptr);
  const std::uint64_t seq = next_seq_++;
  heap_.push(HeapEntry{t, seq});
  pending_.emplace(seq, std::move(fn));
  return EventId{seq};
}

EventId Simulator::schedule_after(SimTime dt, EventFn fn) {
  HPCOS_CHECK_MSG(!dt.is_negative(), "negative delay");
  return schedule_at(now_ + dt, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) return false;
  return pending_.erase(id.seq) > 0;
}

bool Simulator::pop_next(HeapEntry& out, EventFn& fn) {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.top();
    heap_.pop();
    auto it = pending_.find(top.seq);
    if (it == pending_.end()) continue;  // cancelled
    out = top;
    fn = std::move(it->second);
    pending_.erase(it);
    return true;
  }
  return false;
}

bool Simulator::step() {
  HeapEntry e;
  EventFn fn;
  if (!pop_next(e, fn)) return false;
  now_ = e.time;
  ++executed_;
  fn();
  return true;
}

std::size_t Simulator::run_until(SimTime t_end) {
  HPCOS_CHECK(t_end >= now_);
  std::size_t n = 0;
  while (!heap_.empty()) {
    // Peek at the earliest live event without committing to it.
    HeapEntry top = heap_.top();
    if (pending_.find(top.seq) == pending_.end()) {
      heap_.pop();
      continue;
    }
    if (top.time > t_end) break;
    step();
    ++n;
  }
  now_ = t_end;
  return n;
}

std::size_t Simulator::run_all(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

}  // namespace hpcos::sim
