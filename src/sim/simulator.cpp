#include "sim/simulator.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "obs/live/counters.h"

namespace hpcos::sim {

namespace {
constexpr const char* kDefaultTag = "event";
}  // namespace

EventId Simulator::schedule_at(SimTime t, EventFn fn, const char* tag) {
  HPCOS_CHECK_MSG(t >= now_, "event scheduled in the past");
  HPCOS_CHECK(fn != nullptr);
  const std::uint64_t seq = next_seq_++;
  heap_.push(HeapEntry{t, seq});
  pending_.emplace(seq, Pending{std::move(fn), tag});
  ++telemetry_.pushes;
  if (pending_.size() > telemetry_.max_depth) {
    telemetry_.max_depth = pending_.size();
  }
  if (depth_probe_) depth_probe_(now_, pending_.size());
  return EventId{seq};
}

EventId Simulator::schedule_after(SimTime dt, EventFn fn, const char* tag) {
  HPCOS_CHECK_MSG(!dt.is_negative(), "negative delay");
  return schedule_at(now_ + dt, std::move(fn), tag);
}

bool Simulator::cancel(EventId id) {
  if (!id.valid()) return false;
  if (pending_.erase(id.seq) == 0) return false;
  ++telemetry_.cancels;
  return true;
}

Simulator::TagEntry& Simulator::tag_entry(const char* tag) {
  for (TagEntry& e : tags_) {
    if (e.tag == tag) return e;
  }
  // Same literal from another translation unit: match by content so the
  // attribution table stays one row per tag.
  for (TagEntry& e : tags_) {
    if (std::strcmp(e.tag, tag) == 0) return e;
  }
  TagEntry entry;
  entry.tag = tag;
  entry.scope = obs::prof::intern(std::string("des.fire.") + tag);
  tags_.push_back(entry);
  return tags_.back();
}

bool Simulator::pop_next(HeapEntry& out, Pending& ev) {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.top();
    heap_.pop();
    auto it = pending_.find(top.seq);
    if (it == pending_.end()) {
      ++telemetry_.skipped;  // cancelled; its ghost entry dies here
      continue;
    }
    out = top;
    ev = std::move(it->second);
    pending_.erase(it);
    return true;
  }
  return false;
}

bool Simulator::step() {
  HeapEntry e;
  Pending ev;
  if (!pop_next(e, ev)) return false;
  now_ = e.time;
  ++executed_;
  ++telemetry_.pops;
  if (obs::live::enabled()) {
    // Live progress feed (heartbeats/stall watchdog): count every fire,
    // but sample the gauges coarsely — one publish per 512 events keeps
    // the hot loop at one relaxed add when the meter is running.
    obs::live::add_events(1);
    if ((executed_ & 0x1FF) == 0) {
      obs::live::note_sim_time_ns(now_.count_ns());
      obs::live::note_des_depth(pending_.size());
    }
  }
  if (obs::prof::enabled()) {
    // Decompose the hot loop by handler kind: a profiler scope (so the
    // fire shows up in the hotspot table / flamegraph) plus the per-tag
    // host-time accumulator handler_stats() reports.
    TagEntry& tag = tag_entry(ev.tag != nullptr ? ev.tag : kDefaultTag);
    const obs::prof::ScopedTimer timer(tag.scope);
    ev.fn();
    ++tag.fired;
    tag.host_ns += obs::prof::now_ns() - timer.start_ns();
  } else {
    ev.fn();
  }
  if (depth_probe_) depth_probe_(now_, pending_.size());
  return true;
}

std::size_t Simulator::run_until(SimTime t_end) {
  HPCOS_CHECK(t_end >= now_);
  std::size_t n = 0;
  while (!heap_.empty()) {
    // Peek at the earliest live event without committing to it.
    HeapEntry top = heap_.top();
    if (pending_.find(top.seq) == pending_.end()) {
      heap_.pop();
      ++telemetry_.skipped;
      continue;
    }
    if (top.time > t_end) break;
    step();
    ++n;
  }
  now_ = t_end;
  if (obs::live::enabled()) obs::live::note_sim_time_ns(now_.count_ns());
  return n;
}

std::size_t Simulator::run_all(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::vector<HandlerStat> Simulator::handler_stats() const {
  std::vector<HandlerStat> out;
  out.reserve(tags_.size());
  for (const TagEntry& e : tags_) {
    out.push_back(HandlerStat{e.tag, e.fired, e.host_ns});
  }
  std::sort(out.begin(), out.end(),
            [](const HandlerStat& a, const HandlerStat& b) {
              return a.tag < b.tag;
            });
  return out;
}

}  // namespace hpcos::sim
