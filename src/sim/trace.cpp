#include "sim/trace.h"

#include "obs/prof/mem.h"

namespace hpcos::sim {

std::string to_string(TraceCategory c) {
  switch (c) {
    case TraceCategory::kTimerTick:
      return "timer_tick";
    case TraceCategory::kIrq:
      return "irq";
    case TraceCategory::kContextSwitch:
      return "context_switch";
    case TraceCategory::kKworker:
      return "kworker";
    case TraceCategory::kBlkMq:
      return "blk_mq";
    case TraceCategory::kDaemon:
      return "daemon";
    case TraceCategory::kPmuRead:
      return "pmu_read";
    case TraceCategory::kTlbShootdown:
      return "tlb_shootdown";
    case TraceCategory::kSyscall:
      return "syscall";
    case TraceCategory::kSyscallOffload:
      return "syscall_offload";
    case TraceCategory::kPageFault:
      return "page_fault";
    case TraceCategory::kScheduler:
      return "scheduler";
    case TraceCategory::kCollective:
      return "collective";
    case TraceCategory::kUser:
      return "user";
  }
  return "?";
}

TraceBuffer::TraceBuffer(std::size_t capacity) : capacity_(capacity) {
  ring_.resize(capacity);
  if (capacity > 0) {
    obs::prof::memory_counter("trace.ring")
        ->add(capacity * sizeof(TraceRecord));
  }
}

void TraceBuffer::record(TraceRecord rec) {
  ++total_;
  if (capacity_ == 0) return;
  ring_[head_] = std::move(rec);
  head_ = (head_ + 1) % capacity_;
  if (used_ < capacity_) ++used_;
}

std::vector<TraceRecord> TraceBuffer::snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(used_);
  // Oldest record is at head_ when the ring has wrapped, else at 0.
  const std::size_t start = used_ == capacity_ ? head_ : 0;
  for (std::size_t i = 0; i < used_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

std::vector<TraceRecord> TraceBuffer::filter(TraceCategory category) const {
  return filter([category](const TraceRecord& r) {
    return r.category == category;
  });
}

std::vector<TraceRecord> TraceBuffer::filter(
    const std::function<bool(const TraceRecord&)>& pred) const {
  std::vector<TraceRecord> out;
  for (auto& rec : snapshot()) {
    if (pred(rec)) out.push_back(std::move(rec));
  }
  return out;
}

SimTime TraceBuffer::total_duration(TraceCategory category,
                                    hw::CoreId core) const {
  SimTime total = SimTime::zero();
  for (const auto& rec : snapshot()) {
    if (rec.category != category) continue;
    if (core != hw::kInvalidCore && rec.core != core) continue;
    total += rec.duration;
  }
  return total;
}

void TraceBuffer::clear() {
  head_ = 0;
  used_ = 0;
  total_ = 0;
}

}  // namespace hpcos::sim
