// Process model: an address space plus memory-management policy knobs.
//
// The policy fields are where the three OS environments differ:
//  * OFP Linux: THP (2M where possible), demand paging, glibc-style heap
//    that returns large freed blocks to the OS (mmap/munmap churn).
//  * Fugaku Linux: hugeTLBfs-backed 2M (contiguous bit) or 512M pages,
//    optional pre-population, caching allocator.
//  * McKernel: large-page-first from-scratch memory manager that retains
//    physical memory per process (no churn, no broadcast flushes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "oskernel/address_space.h"
#include "oskernel/types.h"

namespace hpcos::os {

// What the allocator does with big freed blocks.
enum class HeapBehavior : std::uint8_t {
  kReleaseToOs,  // munmap immediately (glibc default for mmap'd chunks)
  kCached,       // keep for reuse (Fugaku runtime / McKernel)
};

struct ProcessAttrs {
  std::string name;
  hw::PageSize preferred_page_size = hw::PageSize::k4K;
  PagingPolicy paging = PagingPolicy::kDemand;
  HeapBehavior heap = HeapBehavior::kReleaseToOs;
};

struct Process {
  Pid pid = kInvalidPid;
  ProcessAttrs attrs;
  AddressSpace address_space;
  std::vector<ThreadId> threads;

  // Number of live threads with a single-core footprint; used by the
  // RHEL 8.2 TLBI optimization (single-CPU processes flush locally).
  bool single_core() const { return threads.size() <= 1; }
};

}  // namespace hpcos::os
