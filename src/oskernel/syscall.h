// System call numbers and request/result records.
//
// McKernel's defining property is the *split* of this table: a small set of
// performance-sensitive calls is implemented locally in the LWK and
// everything else is delegated to Linux through the proxy process. Keeping
// the numbers kernel-neutral lets both kernel models share workload bodies.
#pragma once

#include <cstdint>
#include <string>

#include "common/sim_time.h"

namespace hpcos::os {

enum class Syscall : std::uint16_t {
  kRead,
  kWrite,
  kOpen,
  kClose,
  kStat,
  kMmap,
  kMunmap,
  kBrk,
  kFutex,
  kClone,
  kExitGroup,
  kGetTimeOfDay,
  kSchedYield,
  kNanosleep,
  kIoctl,        // Tofu STAG registration goes through here (§5.1)
  kPerfEventOpen,
  kSignal,       // rt_sigaction-ish
  kKill,
  kCount
};
std::string to_string(Syscall s);

// Device ioctl request codes used by the study's Tofu driver model
// (§5.1). Both kernels understand them: Linux serves them in its Tofu
// driver (page-by-page pinning), McKernel's PicoDriver intercepts them.
inline constexpr std::uint64_t kTofuRegisterStag = 0x7001;
inline constexpr std::uint64_t kTofuDeregisterStag = 0x7002;

struct SyscallArgs {
  // Interpreted per call; for memory calls: addr/length; for ioctl: request
  // code; for nanosleep: duration in arg0 (ns).
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  std::uint64_t arg2 = 0;
};

struct SyscallRequest {
  Syscall no = Syscall::kGetTimeOfDay;
  SyscallArgs args;
};

struct SyscallResult {
  std::int64_t value = 0;
  bool ok = true;
  // How the call was served; used by tests and the offload ablation bench.
  enum class Path : std::uint8_t {
    kLocal,        // handled by the kernel the thread runs on
    kOffloaded,    // delegated to Linux via the proxy process
    kFastDriver,   // served by the PicoDriver split-driver fast path
  } path = Path::kLocal;
  SimTime service_time;  // kernel time consumed to serve the call
};

}  // namespace hpcos::os
