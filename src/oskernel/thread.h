// Thread model and the continuation-style execution API.
//
// Simulated programs (FWQ, daemons, workload ranks, the proxy process) are
// ThreadBody subclasses. The kernel calls step() whenever the previous
// action completes; step() must request exactly one next action through the
// ThreadContext. This callback structure gives us preemptible, blockable
// threads without coroutines while keeping bodies easy to write:
//
//   void step(ThreadContext& ctx) override {
//     if (++iter_ > n_) { ctx.exit(); return; }
//     ctx.compute(SimTime::from_ms(6.5));   // one FWQ work quantum
//   }
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/sim_time.h"
#include "hw/cpuset.h"
#include "oskernel/syscall.h"
#include "oskernel/types.h"

namespace hpcos::os {

class ThreadContext;

class ThreadBody {
 public:
  virtual ~ThreadBody() = default;
  // Request the next action. Called on first dispatch and after each
  // completed action.
  virtual void step(ThreadContext& ctx) = 0;
};

enum class ActionKind : std::uint8_t {
  kNone,
  kCompute,
  kSyscall,
  kSleep,
  kYield,
  kExit,
};

struct PendingAction {
  ActionKind kind = ActionKind::kNone;
  SimTime duration;  // compute work or sleep length
  SyscallRequest syscall;
};

// Passed to ThreadBody::step(); records the chosen action and exposes
// thread-visible state.
class ThreadContext {
 public:
  // --- actions (choose exactly one per step) ---
  void compute(SimTime work);
  void invoke(Syscall no, SyscallArgs args = {});
  void sleep_for(SimTime dt);
  void yield();
  void exit();

  // --- observable state ---
  SimTime now() const { return now_; }
  ThreadId tid() const { return tid_; }
  Pid pid() const { return pid_; }
  hw::CoreId core() const { return core_; }
  // Result of the most recently completed syscall.
  const SyscallResult& last_syscall() const { return last_result_; }

 private:
  friend class NodeKernel;
  PendingAction action_;
  bool action_set_ = false;
  SimTime now_;
  ThreadId tid_ = kInvalidThread;
  Pid pid_ = kInvalidPid;
  hw::CoreId core_ = hw::kInvalidCore;
  SyscallResult last_result_;
};

struct SpawnAttrs {
  std::string name;
  Pid pid = kInvalidPid;  // kInvalidPid => kernel assigns a fresh process
  hw::CpuSet affinity;    // empty => all owned cores
  bool kernel_thread = false;
  // Background (daemon/service) thread: its CPU residency is traced as
  // interference so the §4.2.1 analysis can attribute it.
  bool background = false;
};

// Kernel-internal thread record. Owned by NodeKernel; exposed read-only to
// tests and schedulers.
struct Thread {
  ThreadId tid = kInvalidThread;
  Pid pid = kInvalidPid;
  std::string name;
  hw::CpuSet affinity;
  bool kernel_thread = false;
  bool background = false;

  ThreadState state = ThreadState::kReady;
  hw::CoreId core = hw::kInvalidCore;  // current/last core

  std::unique_ptr<ThreadBody> body;
  PendingAction action;
  SimTime remaining;  // unfinished burst time (compute or kernel service)
  ExecMode burst_mode = ExecMode::kUser;
  SyscallResult last_result;

  // Accounting.
  SimTime user_time;
  SimTime kernel_time;
  std::uint64_t voluntary_switches = 0;
  std::uint64_t involuntary_switches = 0;

  // Scheduler state (interpreted by the active scheduler).
  double vruntime = 0.0;

  bool runnable() const {
    return state == ThreadState::kReady || state == ThreadState::kRunning;
  }
};

}  // namespace hpcos::os
