// Identifier and policy types shared by all kernel models.
#pragma once

#include <cstdint>
#include <string>

namespace hpcos::os {

using ThreadId = std::uint64_t;
using Pid = std::uint64_t;
inline constexpr ThreadId kInvalidThread = 0;
inline constexpr Pid kInvalidPid = 0;

enum class ThreadState : std::uint8_t {
  kReady,    // runnable, waiting for a core
  kRunning,  // currently occupying a core
  kBlocked,  // sleeping or waiting on a syscall/offload reply
  kExited,
};
std::string to_string(ThreadState s);

// Execution mode of the current burst, for PMU-style accounting: the paper
// attributes noise by watching user vs kernel instruction counts (§4.2.2).
enum class ExecMode : std::uint8_t { kUser, kKernel };

}  // namespace hpcos::os
