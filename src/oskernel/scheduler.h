// Scheduler policy interface.
//
// Two implementations exist: linuxk::CfsScheduler (fair, tick-driven,
// wake-preempting, load-balancing across allowed cores) and
// mckernel::LwkScheduler (tick-less cooperative round-robin, §5). The
// NodeKernel machinery is policy-free and consults this interface at every
// decision point.
#pragma once

#include <cstddef>
#include <vector>

#include "hw/ids.h"
#include "oskernel/thread.h"

namespace hpcos::os {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // Pick the core a newly-runnable thread should be queued on. Must honor
  // thread.affinity. `running_load` reports runnable+running counts per
  // core, indexed by CoreId.
  virtual hw::CoreId select_core(const Thread& thread,
                                 const std::vector<std::size_t>& load) = 0;

  virtual void enqueue(hw::CoreId core, Thread& thread) = 0;
  // Pop the next thread to run on `core`; kInvalidThread when idle.
  virtual ThreadId pick_next(hw::CoreId core) = 0;
  // Remove a thread from any queue it is on (exit or re-placement).
  virtual void remove(const Thread& thread) = 0;

  virtual std::size_t runnable_count(hw::CoreId core) const = 0;

  // Should `woken` immediately preempt `running` on the same core?
  // (CFS wake-up preemption: yes for freshly woken sleepers; LWK: never.)
  virtual bool preempt_on_wakeup(const Thread& woken,
                                 const Thread& running) const = 0;

  // Tick policy: whether a periodic tick must run on this core right now
  // (queue depth drives nohz_full's "tick restored when >1 runnable").
  virtual bool needs_tick(hw::CoreId core, bool core_busy) const = 0;
  // Invoked from the timer tick: decide whether the running thread should
  // be switched out in favor of a queued one.
  virtual bool should_resched_on_tick(hw::CoreId core, Thread& running) = 0;

  // Charge `elapsed` of execution to the thread (vruntime bookkeeping).
  virtual void charge(Thread& thread, SimTime elapsed) = 0;
};

}  // namespace hpcos::os
