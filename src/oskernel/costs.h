// Kernel operation costs.
//
// Defaults reflect the magnitudes reported for tuned HPC kernels; each
// kernel model overrides what differs (e.g. McKernel's cheaper traps and
// absent ticks). Every figure the harness regenerates depends only on
// relative OS behaviour, so these are calibration knobs, not truth claims.
#pragma once

#include "common/sim_time.h"

namespace hpcos::os {

struct KernelCosts {
  // Thread context switch (register state + runqueue bookkeeping + cache
  // disturbance surcharge).
  SimTime context_switch = SimTime::ns(1500);
  // Syscall trap entry/exit overhead added to every call's service time.
  SimTime syscall_trap = SimTime::ns(150);
  // Timer interrupt handler on a ticking core.
  SimTime tick_duration = SimTime::us(2);
  // Residual once-per-second housekeeping tick on nohz_full cores.
  SimTime residual_tick_duration = SimTime::ns(700);
  // Page fault service: base page (4K/64K) and large page (2M; extra cost
  // is dominated by zeroing).
  SimTime page_fault_base = SimTime::us(1);
  SimTime page_fault_large = SimTime::us(8);
  // Cost per page of tearing down a mapping (PTE clear + accounting),
  // excluding the TLB invalidation itself.
  SimTime unmap_per_page = SimTime::ns(120);
};

}  // namespace hpcos::os
