#include "oskernel/stall_bus.h"

#include "oskernel/kernel.h"

namespace hpcos::os {

void ChipStallBus::broadcast_stall(hw::CoreId initiator, SimTime duration,
                                   sim::TraceCategory category,
                                   const std::string& label) {
  for (NodeKernel* k : kernels_) {
    k->stall_all_cores_except(initiator, duration, category, label);
  }
}

}  // namespace hpcos::os
