// Chip-wide hardware stall distribution.
//
// The ARM64 broadcast TLBI reaches every core in the inner-sharable domain
// — the whole chip — regardless of which kernel owns a core. On a
// multi-kernel node (Linux on the assistant cores, McKernel on the
// application cores) a flush initiated inside Linux therefore stalls LWK
// cores too. Both kernels register with the node's ChipStallBus and
// broadcast stalls are fanned out to every registered kernel.
#pragma once

#include <string>
#include <vector>

#include "common/sim_time.h"
#include "hw/ids.h"
#include "sim/trace.h"

namespace hpcos::os {

class NodeKernel;

class ChipStallBus {
 public:
  void attach(NodeKernel& kernel) { kernels_.push_back(&kernel); }

  // Stall every core on the chip except `initiator` by `duration`.
  void broadcast_stall(hw::CoreId initiator, SimTime duration,
                       sim::TraceCategory category, const std::string& label);

  std::size_t attached_kernels() const { return kernels_.size(); }

 private:
  std::vector<NodeKernel*> kernels_;
};

}  // namespace hpcos::os
