#include "oskernel/kernel.h"

#include <utility>

namespace hpcos::os {

// ---- ThreadContext ----

namespace {
void check_single_action(bool already_set) {
  HPCOS_CHECK_MSG(!already_set,
                  "ThreadBody::step requested more than one action");
}
}  // namespace

void ThreadContext::compute(SimTime work) {
  check_single_action(action_set_);
  HPCOS_CHECK(!work.is_negative());
  action_ = PendingAction{};
  action_.kind = ActionKind::kCompute;
  action_.duration = work;
  action_set_ = true;
}

void ThreadContext::invoke(Syscall no, SyscallArgs args) {
  check_single_action(action_set_);
  action_ = PendingAction{};
  action_.kind = ActionKind::kSyscall;
  action_.syscall = SyscallRequest{no, args};
  action_set_ = true;
}

void ThreadContext::sleep_for(SimTime dt) {
  check_single_action(action_set_);
  HPCOS_CHECK(!dt.is_negative());
  action_ = PendingAction{};
  action_.kind = ActionKind::kSleep;
  action_.duration = dt;
  action_set_ = true;
}

void ThreadContext::yield() {
  check_single_action(action_set_);
  action_ = PendingAction{};
  action_.kind = ActionKind::kYield;
  action_set_ = true;
}

void ThreadContext::exit() {
  check_single_action(action_set_);
  action_ = PendingAction{};
  action_.kind = ActionKind::kExit;
  action_set_ = true;
}

// ---- NodeKernel ----

NodeKernel::NodeKernel(sim::Simulator& simulator,
                       const hw::NodeTopology& topology,
                       hw::CpuSet owned_cores, KernelCosts costs,
                       sim::TraceBuffer* trace)
    : sim_(simulator),
      topology_(topology),
      owned_cores_(std::move(owned_cores)),
      costs_(costs),
      trace_(trace),
      cores_(static_cast<std::size_t>(topology.logical_cores())) {
  HPCOS_CHECK_MSG(owned_cores_.any(), "kernel owns no cores");
  for (hw::CoreId id : owned_cores_.to_vector()) {
    HPCOS_CHECK(id < topology.logical_cores());
    cores_[static_cast<std::size_t>(id)].owned = true;
  }
}

Pid NodeKernel::create_process(ProcessAttrs attrs) {
  const Pid pid = next_pid_++;
  auto proc = std::make_unique<Process>();
  proc->pid = pid;
  proc->attrs = std::move(attrs);
  processes_.emplace(pid, std::move(proc));
  return pid;
}

Process& NodeKernel::process(Pid pid) {
  auto it = processes_.find(pid);
  HPCOS_CHECK_MSG(it != processes_.end(), "unknown pid");
  return *it->second;
}

const Process& NodeKernel::process(Pid pid) const {
  auto it = processes_.find(pid);
  HPCOS_CHECK_MSG(it != processes_.end(), "unknown pid");
  return *it->second;
}

bool NodeKernel::process_alive(Pid pid) const {
  return processes_.contains(pid);
}

ThreadId NodeKernel::spawn(std::unique_ptr<ThreadBody> body,
                           SpawnAttrs attrs) {
  HPCOS_CHECK(body != nullptr);
  const Pid pid = attrs.pid == kInvalidPid
                      ? create_process(ProcessAttrs{.name = attrs.name})
                      : attrs.pid;
  const ThreadId tid = next_tid_++;

  auto t = std::make_unique<Thread>();
  t->tid = tid;
  t->pid = pid;
  t->name = attrs.name.empty() ? ("thread-" + std::to_string(tid))
                               : std::move(attrs.name);
  t->affinity = attrs.affinity.any() ? std::move(attrs.affinity)
                                     : owned_cores_;
  HPCOS_CHECK_MSG(t->affinity.intersects(owned_cores_),
                  "thread affinity excludes all owned cores");
  t->kernel_thread = attrs.kernel_thread;
  t->background = attrs.background;
  t->body = std::move(body);

  threads_.emplace(tid, std::move(t));
  process(pid).threads.push_back(tid);
  ++live_threads_;
  // Initial dispatch goes through the event queue so spawn() returns
  // before the body's first step runs (threads never execute inside their
  // creator's stack frame).
  sim_.schedule_after(
      SimTime::zero(),
      [this, tid] {
        auto it = threads_.find(tid);
        if (it == threads_.end()) return;
        Thread& t = *it->second;
        if (t.state == ThreadState::kReady) enqueue_and_maybe_dispatch(t);
      },
      "os.thread.start");
  return tid;
}

const Thread& NodeKernel::thread(ThreadId tid) const {
  auto it = threads_.find(tid);
  HPCOS_CHECK_MSG(it != threads_.end(), "unknown tid");
  return *it->second;
}

Thread& NodeKernel::thread_mut(ThreadId tid) {
  auto it = threads_.find(tid);
  HPCOS_CHECK_MSG(it != threads_.end(), "unknown tid");
  return *it->second;
}

bool NodeKernel::thread_alive(ThreadId tid) const {
  auto it = threads_.find(tid);
  return it != threads_.end() && it->second->state != ThreadState::kExited;
}

void NodeKernel::set_affinity(ThreadId tid, hw::CpuSet affinity) {
  HPCOS_CHECK_MSG(affinity.intersects(owned_cores_),
                  "affinity excludes all owned cores");
  thread_mut(tid).affinity = std::move(affinity);
}

// ---- interference ----

void NodeKernel::interrupt_core(hw::CoreId core, SimTime duration,
                                sim::TraceCategory category,
                                const std::string& label) {
  CoreState& cs = core_state(core);
  HPCOS_CHECK_MSG(cs.owned, "interrupting a core this kernel does not own");
  HPCOS_CHECK(duration > SimTime::zero());
  trace_event(core, category, duration, label);
  ++cs.acct.interrupts;
  cs.acct.kernel += duration;
  obs::bump(interrupt_ns_counter_,
            static_cast<std::uint64_t>(duration.count_ns()));

  if (cs.in_irq) {
    // Nested/back-to-back interrupts extend the busy period.
    cs.irq_end += duration;
    sim_.cancel(cs.irq_event);
  } else {
    pause_burst(core);
    cs.in_irq = true;
    cs.irq_start = sim_.now();
    cs.irq_end = sim_.now() + duration;
  }
  cs.irq_event = sim_.schedule_at(
      cs.irq_end, [this, core] { on_irq_end(core); }, "os.irq.end");
}

void NodeKernel::stall_core(hw::CoreId core, SimTime duration,
                            sim::TraceCategory category,
                            const std::string& label) {
  CoreState& cs = core_state(core);
  if (!cs.owned || duration.is_zero()) return;
  if (cs.in_irq) {
    // The stall lengthens whatever the core is doing, IRQ handlers
    // included.
    cs.acct.stall += duration;
    trace_event(core, category, duration, label);
    cs.irq_end += duration;
    sim_.cancel(cs.irq_event);
    cs.irq_event = sim_.schedule_at(
        cs.irq_end, [this, core] { on_irq_end(core); }, "os.irq.end");
    return;
  }
  if (cs.running == kInvalidThread) return;  // nothing to slow down
  Thread& t = thread_mut(cs.running);
  if (!cs.burst_event.valid()) return;
  cs.acct.stall += duration;
  trace_event(core, category, duration, label);
  pause_burst(core);
  t.remaining += duration;
  start_burst(core, t);
}

void NodeKernel::stall_all_cores_except(hw::CoreId initiator,
                                        SimTime duration,
                                        sim::TraceCategory category,
                                        const std::string& label) {
  for (hw::CoreId id = owned_cores_.first(); id != hw::kInvalidCore;
       id = owned_cores_.next(id)) {
    if (id == initiator) continue;
    stall_core(id, duration, category, label);
  }
}

// ---- blocking ----

void NodeKernel::wake(ThreadId tid) {
  auto it = threads_.find(tid);
  if (it == threads_.end()) return;
  Thread& t = *it->second;
  if (t.state != ThreadState::kBlocked) return;  // spurious wake
  enqueue_and_maybe_dispatch(t);
}

void NodeKernel::complete_blocked_syscall(ThreadId tid,
                                          SyscallResult result) {
  auto it = threads_.find(tid);
  HPCOS_CHECK_MSG(it != threads_.end(), "completing syscall of unknown tid");
  Thread& t = *it->second;
  HPCOS_CHECK_MSG(t.state == ThreadState::kBlocked,
                  "completing syscall of non-blocked thread");
  t.last_result = result;
  wake(tid);
}

// ---- introspection ----

const CoreAccounting& NodeKernel::accounting(hw::CoreId core) const {
  return cores_.at(static_cast<std::size_t>(core)).acct;
}

ThreadId NodeKernel::running_on(hw::CoreId core) const {
  return cores_.at(static_cast<std::size_t>(core)).running;
}

bool NodeKernel::core_idle(hw::CoreId core) const {
  const CoreState& cs = cores_.at(static_cast<std::size_t>(core));
  return cs.running == kInvalidThread && !cs.in_irq;
}

// ---- protected helpers ----

void NodeKernel::request_resched(hw::CoreId core) {
  CoreState& cs = core_state(core);
  if (cs.in_irq) {
    cs.pending_resched = true;
  } else if (cs.running != kInvalidThread) {
    preempt_running(core);
  } else {
    maybe_dispatch(core);
  }
}

void NodeKernel::preempt_running(hw::CoreId core) {
  CoreState& cs = core_state(core);
  HPCOS_CHECK(cs.running != kInvalidThread);
  pause_burst(core);
  Thread& t = thread_mut(cs.running);
  t.state = ThreadState::kReady;
  ++t.involuntary_switches;
  cs.running = kInvalidThread;
  trace_event(core, sim::TraceCategory::kScheduler, SimTime::zero(),
              "preempt:" + t.name);
  // Preempted threads stay local: queue back on the same core.
  sched().enqueue(core, t);
  on_thread_enqueued(core);
  maybe_dispatch(core);
}

void NodeKernel::block_running(Thread& thread) {
  HPCOS_CHECK(thread.state == ThreadState::kRunning);
  const hw::CoreId core = thread.core;
  CoreState& cs = core_state(core);
  HPCOS_CHECK(cs.running == thread.tid);
  pause_burst(core);
  thread.state = ThreadState::kBlocked;
  thread.action = PendingAction{};
  release_core(core);
  maybe_dispatch(core);
}

void NodeKernel::trace_event(hw::CoreId core, sim::TraceCategory cat,
                             SimTime duration, const std::string& label) {
  if (trace_ == nullptr || !trace_->enabled()) return;
  trace_->record(sim::TraceRecord{.time = sim_.now(),
                                  .core = core,
                                  .category = cat,
                                  .duration = duration,
                                  .label = label});
}

// ---- private machinery ----

NodeKernel::CoreState& NodeKernel::core_state(hw::CoreId core) {
  HPCOS_CHECK(core >= 0 &&
              static_cast<std::size_t>(core) < cores_.size());
  return cores_[static_cast<std::size_t>(core)];
}

std::vector<std::size_t> NodeKernel::load_vector() const {
  std::vector<std::size_t> load(cores_.size(), 0);
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (!cores_[i].owned) continue;
    // The const_cast-free route: schedulers expose runnable counts, and the
    // running thread adds one.
    load[i] = (cores_[i].running != kInvalidThread ? 1 : 0);
  }
  // Queue depths are added by the caller via the scheduler; see
  // enqueue_and_maybe_dispatch.
  return load;
}

void NodeKernel::enqueue_and_maybe_dispatch(Thread& thread) {
  thread.state = ThreadState::kReady;
  std::vector<std::size_t> load = load_vector();
  for (std::size_t i = 0; i < load.size(); ++i) {
    if (cores_[i].owned) {
      load[i] += sched().runnable_count(static_cast<hw::CoreId>(i));
    }
  }
  const hw::CoreId core = sched().select_core(thread, load);
  HPCOS_CHECK_MSG(core != hw::kInvalidCore, "scheduler returned no core");
  HPCOS_CHECK_MSG(core_state(core).owned,
                  "scheduler placed thread on un-owned core");
  sched().enqueue(core, thread);
  on_thread_enqueued(core);

  CoreState& cs = core_state(core);
  if (cs.running == kInvalidThread) {
    if (!cs.in_irq) maybe_dispatch(core);
    // else: on_irq_end dispatches.
    return;
  }
  Thread& running = thread_mut(cs.running);
  if (sched().preempt_on_wakeup(thread, running)) {
    if (cs.in_irq) {
      cs.pending_resched = true;
    } else {
      preempt_running(core);
    }
  }
}

void NodeKernel::maybe_dispatch(hw::CoreId core) {
  CoreState& cs = core_state(core);
  if (cs.running != kInvalidThread || cs.in_irq) return;
  const ThreadId tid = sched().pick_next(core);
  if (tid == kInvalidThread) {
    on_core_idle(core);
    return;
  }
  dispatch(core, tid);
}

void NodeKernel::dispatch(hw::CoreId core, ThreadId tid) {
  CoreState& cs = core_state(core);
  HPCOS_CHECK(cs.running == kInvalidThread);
  Thread& t = thread_mut(tid);
  HPCOS_CHECK(t.state == ThreadState::kReady);
  t.state = ThreadState::kRunning;
  t.core = core;
  cs.running = tid;

  const bool switched = cs.last_ran != tid && cs.last_ran != kInvalidThread;
  cs.last_ran = tid;
  if (switched && costs_.context_switch > SimTime::zero()) {
    ++cs.acct.context_switches;
    // The switch occupies the core in kernel mode before the thread runs;
    // begin_action below will start (or defer) the burst accordingly.
    interrupt_core(core, costs_.context_switch,
                   sim::TraceCategory::kContextSwitch, "switch:" + t.name);
  }
  on_core_activated(core);
  begin_action(core, t);
}

void NodeKernel::begin_action(hw::CoreId core, Thread& thread) {
  switch (thread.action.kind) {
    case ActionKind::kNone:
      finish_action(core, thread);
      return;

    case ActionKind::kCompute:
      if (thread.remaining.is_zero()) {
        thread.remaining = thread.action.duration;
        thread.burst_mode = ExecMode::kUser;
      }
      start_burst(core, thread);
      return;

    case ActionKind::kSyscall: {
      if (thread.remaining.is_zero()) {
        // Fresh call: consult the concrete kernel.
        const SyscallRequest req = thread.action.syscall;
        trace_event(core, sim::TraceCategory::kSyscall, SimTime::zero(),
                    to_string(req.no));
        SyscallDisposition disp = handle_syscall(thread, req);
        if (disp.kind == SyscallDisposition::Kind::kBlocked) {
          thread.state = ThreadState::kBlocked;
          thread.action = PendingAction{};
          release_core(core);
          maybe_dispatch(core);
          return;
        }
        disp.result.service_time = disp.service_time + costs_.syscall_trap;
        thread.last_result = disp.result;  // delivered at burst end; kept
                                           // here so pending state is 1 field
        thread.remaining = disp.service_time + costs_.syscall_trap;
        thread.burst_mode = ExecMode::kKernel;
      }
      start_burst(core, thread);
      return;
    }

    case ActionKind::kSleep: {
      const ThreadId tid = thread.tid;
      const SimTime dt = thread.action.duration;
      thread.state = ThreadState::kBlocked;
      thread.action = PendingAction{};
      sim_.schedule_after(
          dt, [this, tid] { wake(tid); }, "os.sleep.wake");
      release_core(core);
      maybe_dispatch(core);
      return;
    }

    case ActionKind::kYield: {
      ++thread.voluntary_switches;
      thread.action = PendingAction{};
      thread.state = ThreadState::kReady;
      release_core(core);
      sched().enqueue(core, thread);
      maybe_dispatch(core);
      return;
    }

    case ActionKind::kExit:
      destroy_thread(thread);
      return;
  }
}

void NodeKernel::start_burst(hw::CoreId core, Thread& thread) {
  CoreState& cs = core_state(core);
  HPCOS_CHECK(cs.running == thread.tid);
  if (cs.in_irq) return;  // resumed by on_irq_end
  cs.burst_start = sim_.now();
  const ThreadId tid = thread.tid;
  cs.burst_event = sim_.schedule_after(
      thread.remaining, [this, core, tid] { on_burst_done(core, tid); },
      "os.burst.done");
}

void NodeKernel::on_burst_done(hw::CoreId core, ThreadId tid) {
  CoreState& cs = core_state(core);
  HPCOS_CHECK(cs.running == tid);
  Thread& t = thread_mut(tid);
  cs.burst_event = sim::EventId{};
  charge_burst(cs, t, t.remaining);
  t.remaining = SimTime::zero();
  finish_action(core, t);
}

void NodeKernel::pause_burst(hw::CoreId core) {
  CoreState& cs = core_state(core);
  if (cs.running == kInvalidThread || !cs.burst_event.valid()) return;
  Thread& t = thread_mut(cs.running);
  const SimTime elapsed = sim_.now() - cs.burst_start;
  sim_.cancel(cs.burst_event);
  cs.burst_event = sim::EventId{};
  charge_burst(cs, t, elapsed);
  t.remaining -= elapsed;
  HPCOS_CHECK(!t.remaining.is_negative());
}

void NodeKernel::finish_action(hw::CoreId core, Thread& thread) {
  thread.action = PendingAction{};
  ThreadContext ctx;
  ctx.now_ = sim_.now();
  ctx.tid_ = thread.tid;
  ctx.pid_ = thread.pid;
  ctx.core_ = core;
  ctx.last_result_ = thread.last_result;
  thread.body->step(ctx);
  HPCOS_CHECK_MSG(ctx.action_set_,
                  "ThreadBody::step must request exactly one action");
  thread.action = ctx.action_;
  begin_action(core, thread);
}

void NodeKernel::release_core(hw::CoreId core) {
  core_state(core).running = kInvalidThread;
}

void NodeKernel::on_irq_end(hw::CoreId core) {
  CoreState& cs = core_state(core);
  HPCOS_CHECK(cs.in_irq);
  cs.in_irq = false;
  cs.irq_event = sim::EventId{};
  if (cs.pending_resched) {
    cs.pending_resched = false;
    if (cs.running != kInvalidThread) {
      preempt_running(core);
      return;
    }
  }
  if (cs.running != kInvalidThread) {
    start_burst(core, thread_mut(cs.running));
  } else {
    maybe_dispatch(core);
  }
}

void NodeKernel::charge_burst(CoreState& cs, Thread& thread,
                              SimTime elapsed) {
  if (elapsed.is_zero()) return;
  if (thread.burst_mode == ExecMode::kUser && thread.kernel_thread) {
    // Kernel threads (kworkers) execute kernel code even in their
    // "compute" bursts: charge and trace accordingly.
    cs.acct.kernel += elapsed;
    thread.kernel_time += elapsed;
    trace_event(thread.core, sim::TraceCategory::kKworker, elapsed,
                thread.name);
    sched().charge(thread, elapsed);
    return;
  }
  if (thread.burst_mode == ExecMode::kUser) {
    cs.acct.user += elapsed;
    thread.user_time += elapsed;
    if (thread.background) {
      // Background residency is interference from the application's point
      // of view; make it visible to trace analysis (§4.2.1).
      trace_event(thread.core, sim::TraceCategory::kDaemon, elapsed,
                  thread.name);
    }
  } else {
    cs.acct.kernel += elapsed;
    thread.kernel_time += elapsed;
  }
  sched().charge(thread, elapsed);
}

void NodeKernel::destroy_thread(Thread& thread) {
  const hw::CoreId core = thread.core;
  CoreState& cs = core_state(core);
  HPCOS_CHECK(cs.running == thread.tid);
  thread.state = ThreadState::kExited;
  on_thread_exit(thread);
  sched().remove(thread);
  auto& siblings = process(thread.pid).threads;
  std::erase(siblings, thread.tid);
  --live_threads_;
  release_core(core);
  maybe_dispatch(core);
}

}  // namespace hpcos::os
