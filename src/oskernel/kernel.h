// NodeKernel: policy-free execution machinery for one kernel instance.
//
// A kernel instance owns a subset of a node's cores (all of them for a
// plain Linux node; the application partition for McKernel running beside
// Linux) and multiplexes simulated threads onto them. All timing effects
// flow through three primitives:
//
//   * bursts    — a thread consuming CPU (user compute or kernel service);
//   * interrupts— asynchronous kernel-mode time stolen from a core (ticks,
//                 IRQs, IPIs, context switches);
//   * stalls    — hardware-level cycles lost by the *running* burst without
//                 any kernel instructions executing (the A64FX broadcast-
//                 TLBI victim penalty of §4.2.2).
//
// Policy (who runs where and when) is delegated to a Scheduler, and
// semantics of syscalls to the concrete kernel subclass (linuxk::LinuxKernel
// or mckernel::McKernel).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sim_time.h"
#include "hw/cpuset.h"
#include "hw/topology.h"
#include "obs/registry.h"
#include "oskernel/costs.h"
#include "oskernel/process.h"
#include "oskernel/scheduler.h"
#include "oskernel/thread.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace hpcos::os {

// Per-core time breakdown; the substrate's stand-in for the PMU counters
// the paper uses to attribute noise (user vs kernel instructions vs pure
// execution-time inflation).
struct CoreAccounting {
  SimTime user;    // application bursts
  SimTime kernel;  // syscall service + interrupt handlers + switches
  SimTime stall;   // hardware stalls injected into running bursts
  std::uint64_t interrupts = 0;
  std::uint64_t context_switches = 0;
};

class NodeKernel {
 public:
  NodeKernel(sim::Simulator& simulator, const hw::NodeTopology& topology,
             hw::CpuSet owned_cores, KernelCosts costs,
             sim::TraceBuffer* trace = nullptr);
  virtual ~NodeKernel() = default;
  NodeKernel(const NodeKernel&) = delete;
  NodeKernel& operator=(const NodeKernel&) = delete;

  virtual std::string name() const = 0;

  // ---- processes & threads ----
  Pid create_process(ProcessAttrs attrs);
  Process& process(Pid pid);
  const Process& process(Pid pid) const;
  bool process_alive(Pid pid) const;

  // Spawn a thread. Empty affinity means "all owned cores". The thread is
  // enqueued immediately and runs when the scheduler dispatches it.
  ThreadId spawn(std::unique_ptr<ThreadBody> body, SpawnAttrs attrs);

  const Thread& thread(ThreadId tid) const;
  bool thread_alive(ThreadId tid) const;
  std::size_t live_thread_count() const { return live_threads_; }

  // Change a live thread's CPU affinity (the sysfs/taskset mechanism the
  // countermeasures rely on). Takes effect at the next wakeup/enqueue.
  void set_affinity(ThreadId tid, hw::CpuSet affinity);

  // ---- interference injection (kernel subsystems, IKC, tests) ----
  // Steal `duration` of kernel-mode time on a core.
  void interrupt_core(hw::CoreId core, SimTime duration,
                      sim::TraceCategory category, const std::string& label);
  // Nullable total-interrupt-time counter bumped by interrupt_core (the
  // central kernel-time-theft path). Concrete kernels register it as
  // linux.interrupt_ns / lwk.interrupt_ns in set_registry; the streaming
  // RegistrySampler turns its deltas into a Fig. 3-style noise-rate
  // series per kernel.
  void set_interrupt_ns_counter(obs::Counter* counter) {
    interrupt_ns_counter_ = counter;
  }
  // Inflate the running burst on `core` by `duration` (hardware stall).
  // No-op on idle cores.
  void stall_core(hw::CoreId core, SimTime duration,
                  sim::TraceCategory category, const std::string& label);
  // Stall every owned core except `initiator` (broadcast TLBI victims).
  void stall_all_cores_except(hw::CoreId initiator, SimTime duration,
                              sim::TraceCategory category,
                              const std::string& label);

  // ---- blocking support ----
  // Wake a thread blocked via ThreadContext::sleep_for's timer or an
  // explicit block arranged by a subclass. Safe on exited threads (no-op).
  void wake(ThreadId tid);
  // Deliver the result of a blocked syscall and wake the thread.
  void complete_blocked_syscall(ThreadId tid, SyscallResult result);

  // ---- introspection ----
  const CoreAccounting& accounting(hw::CoreId core) const;
  ThreadId running_on(hw::CoreId core) const;
  const hw::CpuSet& owned_cores() const { return owned_cores_; }
  bool core_idle(hw::CoreId core) const;
  sim::Simulator& simulator() { return sim_; }
  const hw::NodeTopology& topology() const { return topology_; }
  const KernelCosts& costs() const { return costs_; }
  sim::TraceBuffer* trace() { return trace_; }

 protected:
  // ---- policy hooks ----
  virtual Scheduler& sched() = 0;

  struct SyscallDisposition {
    enum class Kind : std::uint8_t { kInline, kBlocked } kind = Kind::kInline;
    SimTime service_time;   // kernel time consumed on the calling core
    SyscallResult result;   // delivered when the service burst completes
  };
  // Decide how to serve a syscall. For Kind::kBlocked the subclass must
  // eventually call complete_blocked_syscall(tid, result).
  virtual SyscallDisposition handle_syscall(Thread& thread,
                                            const SyscallRequest& req) = 0;
  // Called when a thread exits (before removal from its process). Linux
  // uses this for address-space teardown (TLB flush storms).
  virtual void on_thread_exit(Thread& /*thread*/) {}
  // Called when a core transitions idle->busy (a thread was dispatched) or
  // busy->idle (nothing left to run). linuxk's tick driver uses these to
  // park/unpark per-core timer ticks (nohz idle).
  virtual void on_core_activated(hw::CoreId /*core*/) {}
  virtual void on_core_idle(hw::CoreId /*core*/) {}
  // Called after a runnable thread is queued on `core` (whether or not it
  // was dispatched). linuxk restarts the full tick cadence here when a
  // nohz_full core gains a second runnable task.
  virtual void on_thread_enqueued(hw::CoreId /*core*/) {}

  // Request that `core` re-evaluate scheduling at the next safe point
  // (immediately if idle-handoff, after the IRQ if inside one). Used by
  // tick handlers.
  void request_resched(hw::CoreId core);

  // Move the running thread (if any) back to the ready queue and dispatch
  // the scheduler's next pick.
  void preempt_running(hw::CoreId core);

  // Block the running thread outside of the syscall path (subclass use).
  void block_running(Thread& thread);

  void trace_event(hw::CoreId core, sim::TraceCategory cat, SimTime duration,
                   const std::string& label);

  // Mutable thread access for subclasses (tick handlers, signal delivery).
  Thread& thread_ref(ThreadId tid) { return thread_mut(tid); }

 private:
  struct CoreState {
    bool owned = false;
    ThreadId running = kInvalidThread;
    ThreadId last_ran = kInvalidThread;
    SimTime burst_start;
    sim::EventId burst_event;
    bool in_irq = false;
    SimTime irq_start;
    SimTime irq_end;
    sim::EventId irq_event;
    bool pending_resched = false;
    CoreAccounting acct;
  };

  Thread& thread_mut(ThreadId tid);
  CoreState& core_state(hw::CoreId core);
  std::vector<std::size_t> load_vector() const;

  void enqueue_and_maybe_dispatch(Thread& thread);
  void maybe_dispatch(hw::CoreId core);
  void dispatch(hw::CoreId core, ThreadId tid);
  void begin_action(hw::CoreId core, Thread& thread);
  void start_burst(hw::CoreId core, Thread& thread);
  void on_burst_done(hw::CoreId core, ThreadId tid);
  void pause_burst(hw::CoreId core);  // charge elapsed, cancel event
  void finish_action(hw::CoreId core, Thread& thread);
  void release_core(hw::CoreId core);
  void on_irq_end(hw::CoreId core);
  void charge_burst(CoreState& cs, Thread& thread, SimTime elapsed);
  void destroy_thread(Thread& thread);

  sim::Simulator& sim_;
  const hw::NodeTopology& topology_;
  hw::CpuSet owned_cores_;
  KernelCosts costs_;
  sim::TraceBuffer* trace_;
  obs::Counter* interrupt_ns_counter_ = nullptr;

  std::vector<CoreState> cores_;
  std::unordered_map<ThreadId, std::unique_ptr<Thread>> threads_;
  std::unordered_map<Pid, std::unique_ptr<Process>> processes_;
  ThreadId next_tid_ = 1;
  Pid next_pid_ = 1;
  std::size_t live_threads_ = 0;
};

}  // namespace hpcos::os
