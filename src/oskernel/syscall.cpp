#include "oskernel/syscall.h"

namespace hpcos::os {

std::string to_string(Syscall s) {
  switch (s) {
    case Syscall::kRead:
      return "read";
    case Syscall::kWrite:
      return "write";
    case Syscall::kOpen:
      return "open";
    case Syscall::kClose:
      return "close";
    case Syscall::kStat:
      return "stat";
    case Syscall::kMmap:
      return "mmap";
    case Syscall::kMunmap:
      return "munmap";
    case Syscall::kBrk:
      return "brk";
    case Syscall::kFutex:
      return "futex";
    case Syscall::kClone:
      return "clone";
    case Syscall::kExitGroup:
      return "exit_group";
    case Syscall::kGetTimeOfDay:
      return "gettimeofday";
    case Syscall::kSchedYield:
      return "sched_yield";
    case Syscall::kNanosleep:
      return "nanosleep";
    case Syscall::kIoctl:
      return "ioctl";
    case Syscall::kPerfEventOpen:
      return "perf_event_open";
    case Syscall::kSignal:
      return "rt_sigaction";
    case Syscall::kKill:
      return "kill";
    case Syscall::kCount:
      break;
  }
  return "?";
}

}  // namespace hpcos::os
