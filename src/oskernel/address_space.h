// Virtual address space model.
//
// Carries the quantities the study turns on: how many pages back a mapping
// (page-fault counts under demand paging), which page size backs it (TLB
// reach), and how many TLB invalidations an unmap generates (the A64FX
// broadcast-TLBI noise source of §4.2.2 — "operations that release large
// amounts of memory ... can cause hundreds to thousands [of] consecutive
// TLB flushes").
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "hw/tlb.h"

namespace hpcos::os {

enum class PagingPolicy : std::uint8_t {
  kDemand,       // populate on first touch
  kPrePopulate,  // populate at map time (MAP_POPULATE / hugeTLBfs prealloc)
};

// Fault taxonomy for span tracing (the Figure 5-7 attribution): a demand
// first-touch of a base page is a minor fault; a bulk populate at map time
// (MAP_POPULATE prepaging — the closest thing to a major-fault storm in a
// diskless model) is major; any fault on a large-page-backed area is the
// hugeTLB path with its own allocator and cost.
enum class FaultKind : std::uint8_t {
  kMinor,
  kMajor,
  kHugeTlb,
};
std::string to_string(FaultKind k);

// One contiguous batch of page faults taken on a single VM area.
struct FaultBatch {
  std::uint64_t faults = 0;
  hw::PageSize page_size = hw::PageSize::k4K;
};

// Classify a fault batch: large pages take the hugeTLB path regardless of
// how they were triggered; base pages split on demand vs. bulk populate.
FaultKind classify_fault(hw::PageSize page, hw::PageSize base_page,
                         bool bulk_populate);

struct VmArea {
  std::uint64_t start = 0;
  std::uint64_t length = 0;
  hw::PageSize page_size = hw::PageSize::k4K;
  // Pages populated so far (demand paging fills from the low end, matching
  // the sequential first-touch of the workload models).
  std::uint64_t populated_pages = 0;

  std::uint64_t total_pages() const {
    return (length + hw::bytes(page_size) - 1) / hw::bytes(page_size);
  }
  std::uint64_t resident_bytes() const {
    return populated_pages * hw::bytes(page_size);
  }
};

class AddressSpace {
 public:
  explicit AddressSpace(std::uint64_t base = 0x0000'7000'0000'0000ull);

  // Create a mapping; returns its start address. Never fails (the model
  // does not emulate address-space exhaustion).
  std::uint64_t map(std::uint64_t length, hw::PageSize page_size,
                    PagingPolicy policy);

  struct UnmapResult {
    std::uint64_t pages_released = 0;
    // TLB invalidations the kernel must issue: one per released page that
    // was actually populated.
    std::uint64_t tlb_flushes = 0;
  };
  // Unmap from the start of an existing area; length may be shorter than
  // the area (the remainder stays mapped). `start` must be an area start.
  UnmapResult unmap(std::uint64_t start, std::uint64_t length);

  // First-touch of [addr, addr+length): returns the number of page faults
  // (pages newly populated). Zero for already-resident ranges.
  std::uint64_t touch(std::uint64_t addr, std::uint64_t length);

  // Like touch(), but also reports the backing page size so callers can
  // price and classify the batch without a second area lookup.
  FaultBatch touch_batch(std::uint64_t addr, std::uint64_t length);

  std::uint64_t mapped_bytes() const;
  std::uint64_t resident_bytes() const;
  std::size_t area_count() const { return areas_.size(); }
  const std::map<std::uint64_t, VmArea>& areas() const { return areas_; }

 private:
  std::map<std::uint64_t, VmArea> areas_;  // keyed by start address
  std::uint64_t next_addr_;
};

}  // namespace hpcos::os
