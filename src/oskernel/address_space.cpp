#include "oskernel/address_space.h"

#include <algorithm>

#include "common/check.h"

namespace hpcos::os {

std::string to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kMinor:
      return "minor";
    case FaultKind::kMajor:
      return "major";
    case FaultKind::kHugeTlb:
      return "hugetlb";
  }
  return "?";
}

FaultKind classify_fault(hw::PageSize page, hw::PageSize base_page,
                         bool bulk_populate) {
  if (page != base_page) return FaultKind::kHugeTlb;
  return bulk_populate ? FaultKind::kMajor : FaultKind::kMinor;
}

AddressSpace::AddressSpace(std::uint64_t base) : next_addr_(base) {}

std::uint64_t AddressSpace::map(std::uint64_t length, hw::PageSize page_size,
                                PagingPolicy policy) {
  HPCOS_CHECK(length > 0);
  const std::uint64_t page = hw::bytes(page_size);
  // Align the start to the page size (required for large-page backing).
  next_addr_ = (next_addr_ + page - 1) / page * page;
  const std::uint64_t start = next_addr_;
  VmArea area{.start = start, .length = length, .page_size = page_size};
  if (policy == PagingPolicy::kPrePopulate) {
    area.populated_pages = area.total_pages();
  }
  next_addr_ += area.total_pages() * page;
  areas_.emplace(start, area);
  return start;
}

AddressSpace::UnmapResult AddressSpace::unmap(std::uint64_t start,
                                              std::uint64_t length) {
  auto it = areas_.find(start);
  HPCOS_CHECK_MSG(it != areas_.end(), "unmap: not an area start");
  VmArea& area = it->second;
  HPCOS_CHECK_MSG(length <= area.length, "unmap: length exceeds area");

  const std::uint64_t page = hw::bytes(area.page_size);
  const std::uint64_t pages_removed =
      std::min((length + page - 1) / page, area.total_pages());
  // Pages populate from the low end, so the unmapped prefix holds
  // min(populated, removed) resident pages.
  const std::uint64_t resident_removed =
      std::min(area.populated_pages, pages_removed);

  UnmapResult r{.pages_released = pages_removed,
                .tlb_flushes = resident_removed};

  if (pages_removed >= area.total_pages()) {
    areas_.erase(it);
  } else {
    VmArea rest = area;
    rest.start += pages_removed * page;
    rest.length -= pages_removed * page;
    rest.populated_pages = area.populated_pages - resident_removed;
    areas_.erase(it);
    areas_.emplace(rest.start, rest);
  }
  return r;
}

std::uint64_t AddressSpace::touch(std::uint64_t addr, std::uint64_t length) {
  return touch_batch(addr, length).faults;
}

FaultBatch AddressSpace::touch_batch(std::uint64_t addr,
                                     std::uint64_t length) {
  // Find the area containing addr: last area with start <= addr.
  auto it = areas_.upper_bound(addr);
  HPCOS_CHECK_MSG(it != areas_.begin(), "touch: unmapped address");
  --it;
  VmArea& area = it->second;
  HPCOS_CHECK_MSG(addr >= area.start && addr < area.start + area.length,
                  "touch: unmapped address");
  FaultBatch batch{.faults = 0, .page_size = area.page_size};
  const std::uint64_t page = hw::bytes(area.page_size);
  const std::uint64_t end =
      std::min(addr + length, area.start + area.length);
  const std::uint64_t last_page_needed =
      (end - area.start + page - 1) / page;
  if (last_page_needed <= area.populated_pages) return batch;
  batch.faults = last_page_needed - area.populated_pages;
  area.populated_pages = last_page_needed;
  return batch;
}

std::uint64_t AddressSpace::mapped_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [_, a] : areas_) total += a.length;
  return total;
}

std::uint64_t AddressSpace::resident_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [_, a] : areas_) total += a.resident_bytes();
  return total;
}

}  // namespace hpcos::os
