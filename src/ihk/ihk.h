// IHK manager: LWK instance lifecycle on top of resource partitioning.
//
// Mirrors the real IHK's operational model (a collection of Linux kernel
// modules): reserve resources dynamically, create an OS instance, boot an
// LWK into it, tear it down, release the resources — all without rebooting
// the host. On OFP this is exactly what the job prologue/epilogue scripts
// do (§5.1).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "ihk/ikc.h"
#include "ihk/resource.h"
#include "sim/simulator.h"

namespace hpcos::ihk {

enum class OsInstanceStatus : std::uint8_t {
  kCreated,   // resources assigned, not booted
  kBooted,    // LWK running
  kShutdown,  // stopped, resources still held
};
std::string to_string(OsInstanceStatus s);

struct OsInstance {
  int id = -1;
  OsInstanceStatus status = OsInstanceStatus::kCreated;
  hw::CpuSet cpus;
  std::uint64_t memory_bytes = 0;
  // Delegation channels (LWK -> Linux and Linux -> LWK).
  std::unique_ptr<IkcChannel> to_host;
  std::unique_ptr<IkcChannel> to_lwk;
};

class IhkManager {
 public:
  IhkManager(sim::Simulator& simulator, const hw::NodeTopology& topology,
             hw::CpuSet host_cores, hw::CpuSet protected_cores,
             std::uint64_t host_memory_bytes,
             SimTime ikc_latency = SimTime::ns(800));

  ResourcePartition& partition() { return partition_; }

  // Create an OS instance over already-reserved resources. Returns the
  // instance id, or -1 when cpus/memory are not actually reserved.
  int create_os_instance(const hw::CpuSet& cpus, std::uint64_t memory_bytes);
  // Mark the instance booted (the McKernel object is constructed by the
  // caller against the instance's resources).
  void boot(int instance_id);
  void shutdown(int instance_id);
  // Destroy the instance and release its resources back to the host.
  void destroy(int instance_id);

  OsInstance& instance(int instance_id);
  bool instance_exists(int instance_id) const;
  std::size_t instance_count() const { return instances_.size(); }

 private:
  sim::Simulator& sim_;
  ResourcePartition partition_;
  SimTime ikc_latency_;
  std::map<int, OsInstance> instances_;
  int next_id_ = 0;
};

}  // namespace hpcos::ihk
