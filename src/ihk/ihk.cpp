#include "ihk/ihk.h"

#include "common/check.h"

namespace hpcos::ihk {

std::string to_string(OsInstanceStatus s) {
  switch (s) {
    case OsInstanceStatus::kCreated:
      return "created";
    case OsInstanceStatus::kBooted:
      return "booted";
    case OsInstanceStatus::kShutdown:
      return "shutdown";
  }
  return "?";
}

IhkManager::IhkManager(sim::Simulator& simulator,
                       const hw::NodeTopology& topology,
                       hw::CpuSet host_cores, hw::CpuSet protected_cores,
                       std::uint64_t host_memory_bytes, SimTime ikc_latency)
    : sim_(simulator),
      partition_(topology, std::move(host_cores), std::move(protected_cores),
                 host_memory_bytes),
      ikc_latency_(ikc_latency) {}

int IhkManager::create_os_instance(const hw::CpuSet& cpus,
                                   std::uint64_t memory_bytes) {
  if (!partition_.reserved_cpus().contains(cpus)) return -1;
  if (memory_bytes > partition_.reserved_memory()) return -1;

  const int id = next_id_++;
  OsInstance inst;
  inst.id = id;
  inst.cpus = cpus;
  inst.memory_bytes = memory_bytes;
  inst.to_host = std::make_unique<IkcChannel>(
      sim_, "ikc-os" + std::to_string(id) + "-to-host", ikc_latency_);
  inst.to_lwk = std::make_unique<IkcChannel>(
      sim_, "ikc-host-to-os" + std::to_string(id), ikc_latency_);
  instances_.emplace(id, std::move(inst));
  return id;
}

void IhkManager::boot(int instance_id) {
  OsInstance& inst = instance(instance_id);
  HPCOS_CHECK_MSG(inst.status == OsInstanceStatus::kCreated,
                  "boot of non-fresh OS instance");
  inst.status = OsInstanceStatus::kBooted;
}

void IhkManager::shutdown(int instance_id) {
  OsInstance& inst = instance(instance_id);
  HPCOS_CHECK_MSG(inst.status == OsInstanceStatus::kBooted,
                  "shutdown of non-booted OS instance");
  inst.status = OsInstanceStatus::kShutdown;
}

void IhkManager::destroy(int instance_id) {
  OsInstance& inst = instance(instance_id);
  HPCOS_CHECK_MSG(inst.status != OsInstanceStatus::kBooted,
                  "destroy of a running OS instance");
  partition_.release_cpus(inst.cpus);
  partition_.release_memory(inst.memory_bytes);
  instances_.erase(instance_id);
}

OsInstance& IhkManager::instance(int instance_id) {
  auto it = instances_.find(instance_id);
  HPCOS_CHECK_MSG(it != instances_.end(), "unknown OS instance");
  return it->second;
}

bool IhkManager::instance_exists(int instance_id) const {
  return instances_.contains(instance_id);
}

}  // namespace hpcos::ihk
