// Inter-Kernel Communication (IKC).
//
// IHK's IKC layer carries system-call delegation traffic between McKernel
// and Linux: a doorbell interrupt plus a shared-memory message queue. The
// model is a unidirectional channel with a fixed one-way latency (doorbell
// IPI + queue handling); the pair of channels forms the offload path.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/sim_time.h"
#include "obs/registry.h"
#include "oskernel/syscall.h"
#include "oskernel/types.h"
#include "sim/simulator.h"

namespace hpcos::ihk {

struct IkcMessage {
  std::uint64_t seq = 0;
  // LWK-side thread awaiting the reply (carried through so the reply
  // handler can wake it).
  os::ThreadId sender = os::kInvalidThread;
  os::Pid sender_pid = os::kInvalidPid;
  os::SyscallRequest request;
  os::SyscallResult result;
  bool is_reply = false;
  SimTime sent_at;

  // Observability: the span id of the offload operation this message
  // belongs to (0 when tracing is off) plus the path timestamps collected
  // as the message crosses the stack. The reply handler reconstructs the
  // whole round trip from these (see mckernel/offload.cpp).
  std::uint64_t span = 0;
  SimTime offload_start;       // LWK-side enqueue (before marshalling)
  SimTime host_delivered_at;   // doorbell delivery on the Linux side
  SimTime proxy_start;         // proxy thread began executing the call
};

class IkcChannel {
 public:
  using Handler = std::function<void(const IkcMessage&)>;

  IkcChannel(sim::Simulator& simulator, std::string name, SimTime latency);

  // Destination-side delivery callback; must be set before post().
  void set_receiver(Handler handler) { receiver_ = std::move(handler); }

  // Register this channel's counters (ikc.<name>.posted / .delivered) and
  // the queue-depth histogram (ikc.<name>.inflight, sampled at each post).
  // Optional; the channel runs uninstrumented when never called.
  void set_registry(obs::Registry* registry);

  // Enqueue a message; delivered (receiver invoked) after the channel
  // latency. Messages never reorder: delivery inherits the simulator's
  // FIFO tie-breaking for equal timestamps.
  void post(IkcMessage message);

  const std::string& name() const { return name_; }
  SimTime latency() const { return latency_; }
  std::uint64_t messages_posted() const { return posted_; }
  std::uint64_t messages_delivered() const { return delivered_; }

 private:
  sim::Simulator& sim_;
  std::string name_;
  SimTime latency_;
  Handler receiver_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t posted_ = 0;
  std::uint64_t delivered_ = 0;
  obs::Counter* posted_counter_ = nullptr;
  obs::Counter* delivered_counter_ = nullptr;
  LogHistogram* inflight_hist_ = nullptr;
};

}  // namespace hpcos::ihk
