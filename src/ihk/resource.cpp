#include "ihk/resource.h"

#include "common/check.h"

namespace hpcos::ihk {

ResourcePartition::ResourcePartition(const hw::NodeTopology& topology,
                                     hw::CpuSet host_cores,
                                     hw::CpuSet protected_cores,
                                     std::uint64_t host_memory)
    : host_cores_(std::move(host_cores)),
      protected_cores_(std::move(protected_cores)),
      host_memory_(host_memory),
      reserved_cpus_(static_cast<std::size_t>(topology.logical_cores())) {
  HPCOS_CHECK(host_cores_.any());
  HPCOS_CHECK_MSG(host_cores_.contains(protected_cores_),
                  "protected cores must be host-owned");
}

bool ResourcePartition::reserve_cpus(const hw::CpuSet& cores) {
  if (!cores.any()) return false;
  if (!host_cores_.contains(cores)) return false;
  if (cores.intersects(protected_cores_)) return false;
  if (cores.intersects(reserved_cpus_)) return false;
  reserved_cpus_ = reserved_cpus_ | cores;
  return true;
}

bool ResourcePartition::reserve_memory(std::uint64_t bytes) {
  if (bytes == 0 || bytes > remaining_host_memory()) return false;
  reserved_memory_ += bytes;
  return true;
}

void ResourcePartition::release_cpus(const hw::CpuSet& cores) {
  HPCOS_CHECK_MSG(reserved_cpus_.contains(cores),
                  "releasing cores that were not reserved");
  reserved_cpus_ = reserved_cpus_.minus(cores);
}

void ResourcePartition::release_memory(std::uint64_t bytes) {
  HPCOS_CHECK_MSG(bytes <= reserved_memory_,
                  "releasing more memory than reserved");
  reserved_memory_ -= bytes;
}

void ResourcePartition::release_all() {
  reserved_cpus_.clear();
  reserved_memory_ = 0;
}

hw::CpuSet ResourcePartition::remaining_host_cpus() const {
  return host_cores_.minus(reserved_cpus_);
}

}  // namespace hpcos::ihk
