// IHK resource partitioning (§5).
//
// IHK reserves CPU cores and physical memory from the host Linux *at
// runtime* — no reboot — and hands them to a lightweight kernel instance.
// The partition tracks what has been taken from the host so it can be
// released when the LWK shuts down (the job-epilogue path on OFP).
#pragma once

#include <cstdint>

#include "hw/cpuset.h"
#include "hw/topology.h"

namespace hpcos::ihk {

class ResourcePartition {
 public:
  // `host_cores`: cores currently owned by the host Linux; reservations
  // must come out of this set and must not touch `protected_cores`
  // (system/assistant cores Linux needs for itself).
  ResourcePartition(const hw::NodeTopology& topology, hw::CpuSet host_cores,
                    hw::CpuSet protected_cores, std::uint64_t host_memory);

  // Reserve cores for an LWK. Fails (returning false, no change) when the
  // request overlaps protected cores, already-reserved cores, or cores the
  // host does not own.
  bool reserve_cpus(const hw::CpuSet& cores);
  // Reserve physical memory bytes; fails when exceeding what remains.
  bool reserve_memory(std::uint64_t bytes);

  void release_cpus(const hw::CpuSet& cores);
  void release_memory(std::uint64_t bytes);
  void release_all();

  const hw::CpuSet& reserved_cpus() const { return reserved_cpus_; }
  std::uint64_t reserved_memory() const { return reserved_memory_; }
  // What the host retains after reservations.
  hw::CpuSet remaining_host_cpus() const;
  std::uint64_t remaining_host_memory() const {
    return host_memory_ - reserved_memory_;
  }

 private:
  hw::CpuSet host_cores_;
  hw::CpuSet protected_cores_;
  std::uint64_t host_memory_;
  hw::CpuSet reserved_cpus_;
  std::uint64_t reserved_memory_ = 0;
};

}  // namespace hpcos::ihk
