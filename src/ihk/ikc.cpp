#include "ihk/ikc.h"

#include "common/check.h"

namespace hpcos::ihk {

IkcChannel::IkcChannel(sim::Simulator& simulator, std::string name,
                       SimTime latency)
    : sim_(simulator), name_(std::move(name)), latency_(latency) {
  HPCOS_CHECK(!latency_.is_negative());
}

void IkcChannel::set_registry(obs::Registry* registry) {
  if (registry == nullptr) {
    posted_counter_ = nullptr;
    delivered_counter_ = nullptr;
    inflight_hist_ = nullptr;
    return;
  }
  posted_counter_ = registry->counter("ikc." + name_ + ".posted");
  delivered_counter_ = registry->counter("ikc." + name_ + ".delivered");
  inflight_hist_ = registry->histogram("ikc." + name_ + ".inflight",
                                       /*min_value=*/1.0,
                                       /*max_value=*/4096.0, /*num_bins=*/32);
}

void IkcChannel::post(IkcMessage message) {
  HPCOS_CHECK_MSG(receiver_ != nullptr,
                  "IKC post on channel without a receiver");
  message.seq = next_seq_++;
  message.sent_at = sim_.now();
  ++posted_;
  obs::bump(posted_counter_);
  // Queue depth the new message observes (itself included).
  obs::observe(inflight_hist_, static_cast<double>(posted_ - delivered_));
  sim_.schedule_after(
      latency_,
      [this, msg = std::move(message)] {
        ++delivered_;
        obs::bump(delivered_counter_);
        receiver_(msg);
      },
      "ikc.deliver");
}

}  // namespace hpcos::ihk
