#include "ihk/ikc.h"

#include "common/check.h"

namespace hpcos::ihk {

IkcChannel::IkcChannel(sim::Simulator& simulator, std::string name,
                       SimTime latency)
    : sim_(simulator), name_(std::move(name)), latency_(latency) {
  HPCOS_CHECK(!latency_.is_negative());
}

void IkcChannel::post(IkcMessage message) {
  HPCOS_CHECK_MSG(receiver_ != nullptr,
                  "IKC post on channel without a receiver");
  message.seq = next_seq_++;
  message.sent_at = sim_.now();
  ++posted_;
  sim_.schedule_after(latency_, [this, msg = std::move(message)] {
    ++delivered_;
    receiver_(msg);
  });
}

}  // namespace hpcos::ihk
